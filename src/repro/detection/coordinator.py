"""Distributed composite-event detection across sites.

The distributed engine mirrors Sentinel's architecture extended to a
multi-site system (Section 5.2-5.3 of the paper): primitive events are
detected at their home site; every operator node of the event graph is
*placed* at one site; when a node's emission has a subscriber on another
site, the occurrence — event type, parameters, and its composite
timestamp — travels there in a :class:`Message`.

The coordinator is transport-agnostic: emissions destined for a remote
node are appended to :attr:`DistributedDetector.outbox`, and the caller
(typically the simulator, :mod:`repro.sim`) delivers them with whatever
latency/ordering model it implements by calling :meth:`deliver`.
:meth:`pump` is the zero-latency convenience that drains the outbox in
FIFO order.

Because timestamps are propagated as composite max-sets and combined via
``Max`` at every node, detections carry exactly the timestamps the
paper's semantics prescribes *regardless of where nodes are placed* —
the placement only affects message counts and latency, which the SCALE
benchmark measures across :class:`PlacementPolicy` choices.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import warnings
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.contexts.policies import Context
from repro.errors import PlacementError, UnknownSiteError
from repro.events.expressions import EventExpression, Primitive
from repro.events.occurrences import EventOccurrence
from repro.events.parser import parse_expression
from repro.obs.instrument import Instrumentation, resolve
from repro.detection.detector import Detection, Detector
from repro.detection.graph import EventGraph
from repro.detection.nodes import (
    Node,
    PeriodicNode,
    PlusNode,
    PrimitiveNode,
    make_timer_stamp,
)
from repro.time.timestamps import PrimitiveTimestamp


class PlacementPolicy(enum.Enum):
    """How operator nodes are assigned to sites.

    ``LEAF_MAJORITY`` places each operator at the site contributing most
    of its primitive leaves (ties to the lexicographically first site) —
    it minimizes leaf-to-operator messages.  ``COORDINATOR`` places every
    operator at one designated site — the classic centralized-detector
    layout.  ``ROUND_ROBIN`` spreads operators across sites in creation
    order — a load-balancing strawman for the ablation.
    """

    LEAF_MAJORITY = "leaf_majority"
    COORDINATOR = "coordinator"
    ROUND_ROBIN = "round_robin"


@dataclass(frozen=True, slots=True)
class Message:
    """A cross-site event notification.

    ``size`` approximates the wire size: one unit per primitive triple in
    the timestamp plus one per parameter — used by the benchmarks to
    compare timestamp-set growth against the no-max-set baseline.
    """

    src: str
    dst: str
    node_id: int
    role: str
    occurrence: EventOccurrence
    seq: int

    @property
    def size(self) -> int:
        return len(self.occurrence.timestamp) + len(self.occurrence.parameters)


class DistributedDetector:
    """A multi-site detection engine over one shared event graph.

    Parameters
    ----------
    sites:
        The site names of the distributed system.
    coordinator:
        The site used by :attr:`PlacementPolicy.COORDINATOR` and as the
        default home of root aliases; defaults to the first site.
    timer_ratio:
        Local ticks per global granule for timer stamps.
    instrumentation:
        An optional :class:`~repro.obs.instrument.Instrumentation` hub;
        defaults to the shared disabled singleton (no-op hooks).
    """

    def __init__(
        self,
        sites: list[str],
        coordinator: str | None = None,
        timer_ratio: int = 1,
        *,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if not sites:
            raise PlacementError("a distributed detector needs at least one site")
        self.sites = list(sites)
        self.coordinator = coordinator if coordinator is not None else sites[0]
        if self.coordinator not in self.sites:
            raise UnknownSiteError(f"coordinator {self.coordinator!r} is not a site")
        self.timer_ratio = timer_ratio
        self.obs = resolve(instrumentation)
        self.graph = EventGraph()
        self.placements: dict[Node, str] = {}
        self.home_sites: dict[str, str] = {}
        self.outbox: deque[Message] = deque()
        self.detections: list[Detection] = []
        self.message_log: list[Message] = []
        self._callbacks: dict[str, list[Callable[[Detection], None]]] = {}
        self._round_robin = itertools.cycle(self.sites)
        self._message_seq = itertools.count()
        self._node_ids: dict[Node, int] = {}
        self._nodes_by_id: dict[int, Node] = {}
        self._node_id_seq = itertools.count(1)
        self._placement_policy = PlacementPolicy.LEAF_MAJORITY
        self._timer_heaps: dict[str, list[tuple[int, int, Node, Any]]] = {
            site: [] for site in self.sites
        }
        self._timer_seq = itertools.count()
        self._pending_timers = 0
        self._now_global: dict[str, int] = {site: 0 for site in self.sites}
        self._timer_site_binding: dict[Node, str] = {}
        self._registrations: list[tuple[EventExpression, str, Context]] = []

    # --- registration -----------------------------------------------------

    def set_home(self, event_type: str, site: str) -> None:
        """Declare the home site of a primitive event type."""
        if site not in self.sites:
            raise UnknownSiteError(f"{site!r} is not a site of this system")
        self.home_sites[event_type] = site

    def register(
        self,
        expression: EventExpression | str,
        name: str | None = None,
        context: Context = Context.UNRESTRICTED,
        placement: PlacementPolicy = PlacementPolicy.LEAF_MAJORITY,
        callback: Callable[[Detection], None] | None = None,
        optimize: bool = False,
    ) -> Node:
        """Register a composite event and place its operator nodes."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        if optimize:
            from repro.events.rewrite import simplify

            expression = simplify(expression)
        for leaf in expression.primitive_types():
            if leaf not in self.home_sites:
                raise PlacementError(
                    f"primitive event {leaf!r} has no home site; call "
                    f"set_home({leaf!r}, <site>) first"
                )
        root = self.graph.add_expression(
            expression, name=name, context=context, timer_ratio=self.timer_ratio
        )
        self._placement_policy = placement
        self._place_new_nodes(expression)
        self._registrations.append((expression, root.name, context))
        if callback is not None:
            self._callbacks.setdefault(root.name, []).append(callback)
        if self.obs.enabled:
            self.obs.event(
                "detector.register",
                site=self.placements.get(root, self.coordinator),
                event=root.name,
                expression=str(expression),
                placement=placement.value,
                **self.graph.stats(),
            )
        return root

    def local_clone(self, site: str = "local") -> Detector:
        """A single-site :class:`Detector` with the same registrations.

        The confirmation pass of the approximate mode
        (:meth:`~repro.sim.cluster.DistributedSystem.confirm`) replays
        the stamped history through one of these behind a stabilizer to
        obtain the exact in-order multiset.  Timer stamps carry the
        clone's site label instead of the placed site's, so comparisons
        must canonicalize timer sites
        (:func:`~repro.detection.approximate.detection_key`).
        """
        twin = Detector(site, self.timer_ratio)
        for expression, name, context in self._registrations:
            twin.register(expression, name=name, context=context)
        return twin

    def _place_new_nodes(self, expression: EventExpression) -> None:
        for node in self.graph.nodes():
            if node in self.placements:
                continue
            node_id = next(self._node_id_seq)
            self._node_ids[node] = node_id
            self._nodes_by_id[node_id] = node
            site = self._site_for(node)
            self.placements[node] = site
            if isinstance(node, (PeriodicNode, PlusNode)):
                node.bind_timers(_SiteTimerService(self, site))
                node.timer_site = f"{site}.timer"
                self._timer_site_binding[node] = site

    def _site_for(self, node: Node) -> str:
        if isinstance(node, PrimitiveNode):
            return self.home_sites.get(node.name, self.coordinator)
        return {
            PlacementPolicy.LEAF_MAJORITY: self._leaf_majority_site,
            PlacementPolicy.COORDINATOR: lambda n: self.coordinator,
            PlacementPolicy.ROUND_ROBIN: lambda n: next(self._round_robin),
        }[self._placement_policy](node)

    def _leaf_majority_site(self, node: Node) -> str:
        votes: Counter[str] = Counter()
        self._collect_leaf_sites(node, votes, set())
        if not votes:
            return self.coordinator
        top_count = max(votes.values())
        return min(site for site, count in votes.items() if count == top_count)

    def _collect_leaf_sites(
        self, target: Node, votes: Counter, seen: set[int]
    ) -> None:
        if id(target) in seen:
            return
        seen.add(id(target))
        for child, edges in self.graph.edges.items():
            for edge in edges:
                if edge.parent is target:
                    if isinstance(child, PrimitiveNode):
                        votes[self.home_sites.get(child.name, self.coordinator)] += 1
                    else:
                        self._collect_leaf_sites(child, votes, seen)

    # --- feeding and message delivery --------------------------------------

    def feed(
        self,
        occurrence: EventOccurrence | str,
        stamp: PrimitiveTimestamp | None = None,
        *,
        parameters: Mapping[str, Any] | None = None,
    ) -> list[Detection]:
        """Raise a primitive occurrence at its home site.

        The documented intake, in two forms (mirrors
        :meth:`repro.detection.detector.Detector.feed`)::

            detector.feed(occurrence)                    # pre-built
            detector.feed("deposit", stamp, parameters={})
        """
        if isinstance(occurrence, EventOccurrence):
            if stamp is not None or parameters is not None:
                raise TypeError(
                    "feed(occurrence) takes no stamp/parameters — they are "
                    "already part of the occurrence"
                )
        else:
            if stamp is None:
                raise TypeError("feed(event_type, stamp) requires a stamp")
            occurrence = EventOccurrence.primitive(occurrence, stamp, parameters)
        return self.feed_occurrence(occurrence)

    def feed_primitive(
        self,
        event_type: str,
        stamp: PrimitiveTimestamp,
        parameters: Mapping[str, Any] | None = None,
    ) -> list[Detection]:
        """Deprecated alias of :meth:`feed` (``event_type, stamp`` form)."""
        warnings.warn(
            "DistributedDetector.feed_primitive is deprecated; use "
            "DistributedDetector.feed",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.feed(event_type, stamp, parameters=parameters)

    def feed_occurrence(self, occurrence: EventOccurrence) -> list[Detection]:
        """Raise an already-built primitive occurrence at its home site."""
        leaf = self.graph.primitive_node(occurrence.event_type)
        if leaf not in self.placements:
            node_id = next(self._node_id_seq)
            self._node_ids[leaf] = node_id
            self._nodes_by_id[node_id] = leaf
            self.placements[leaf] = self.home_sites.get(
                occurrence.event_type, self.coordinator
            )
        if self.obs.enabled:
            with self.obs.span(
                "detector.feed",
                site=self.placements[leaf],
                event=occurrence.event_type,
            ):
                return self._emit_from(leaf, occurrence)
        return self._emit_from(leaf, occurrence)

    def deliver(self, message: Message) -> list[Detection]:
        """Deliver one in-flight message to its destination node.

        The caller (simulator) decides *when* to call this; the engine
        does not reorder or drop.
        """
        node = self._nodes_by_id[message.node_id]
        if self.obs.enabled:
            with self.obs.span(
                "message.deliver",
                site=message.dst,
                link=f"{message.src}->{message.dst}",
                node=node.name,
            ):
                with self.obs.span(
                    "node.receive",
                    site=message.dst,
                    op=node.kind,
                    node=node.name,
                    role=message.role,
                ) as span:
                    produced = node.receive(message.occurrence, message.role)
                    span.set(emitted=len(produced))
                detections: list[Detection] = []
                for emission in produced:
                    detections.extend(self._emit_from(node, emission))
                return detections
        produced = node.receive(message.occurrence, message.role)
        detections = []
        for emission in produced:
            detections.extend(self._emit_from(node, emission))
        return detections

    def pump(self) -> list[Detection]:
        """Deliver all in-flight messages FIFO until quiescent (zero latency)."""
        detections: list[Detection] = []
        while self.outbox:
            detections.extend(self.deliver(self.outbox.popleft()))
        return detections

    def _emit_from(self, node: Node, occurrence: EventOccurrence) -> list[Detection]:
        obs = self.obs
        detections: list[Detection] = []
        name = node.name
        if occurrence.event_type == name and self.graph.roots.get(name) is node:
            detection = Detection(name=name, occurrence=occurrence)
            self.detections.append(detection)
            for callback in self._callbacks.get(name, ()):
                callback(detection)
            detections.append(detection)
        placements = self.placements
        node_site = placements[node]
        for edge in self.graph.subscribers(node):
            parent = edge.parent
            parent_site = placements[parent]
            if parent_site == node_site:
                if obs.enabled:
                    with obs.span(
                        "node.receive",
                        site=parent_site,
                        op=parent.kind,
                        node=parent.name,
                        role=edge.role,
                    ) as span:
                        produced = parent.receive(occurrence, edge.role)
                        span.set(emitted=len(produced))
                else:
                    produced = parent.receive(occurrence, edge.role)
                for emission in produced:
                    detections.extend(self._emit_from(parent, emission))
            else:
                message = Message(
                    src=node_site,
                    dst=parent_site,
                    node_id=self._node_ids[edge.parent],
                    role=edge.role,
                    occurrence=occurrence,
                    seq=next(self._message_seq),
                )
                self.outbox.append(message)
                self.message_log.append(message)
                if obs.enabled:
                    obs.counter(
                        "coordinator.messages", link=f"{node_site}->{parent_site}"
                    ).inc()
        return detections

    def _record_if_root(
        self, node: Node, occurrence: EventOccurrence
    ) -> list[Detection]:
        if occurrence.event_type != node.name:
            return []
        registered = self.graph.roots.get(node.name)
        if registered is not node:
            return []
        detection = Detection(name=node.name, occurrence=occurrence)
        self.detections.append(detection)
        for callback in self._callbacks.get(node.name, []):
            callback(detection)
        return [detection]

    # --- timers -------------------------------------------------------------

    def schedule_at(
        self, site: str, node: Node, fire_global: int, payload: Any
    ) -> None:
        """Schedule a timer on one site's clock (used by temporal nodes).

        Late deadlines are clamped to the site's current granule, as in
        :meth:`repro.detection.detector.Detector.schedule`: an opener
        that crossed the network slower than its offset still fires its
        timer, at the earliest granule the site's clock allows.
        """
        if fire_global < self._now_global[site]:
            fire_global = self._now_global[site]
        heapq.heappush(
            self._timer_heaps[site],
            (fire_global, next(self._timer_seq), node, payload),
        )
        self._pending_timers += 1

    def advance_time(self, global_time: int) -> list[Detection]:
        """Advance every site's clock, firing due timers in granule order."""
        if not self._pending_timers:
            now_global = self._now_global
            for site, current in now_global.items():
                if current < global_time:
                    now_global[site] = global_time
            return []
        detections: list[Detection] = []
        for site in self.sites:
            heap = self._timer_heaps[site]
            while heap and heap[0][0] <= global_time:
                fire_global, _, node, payload = heapq.heappop(heap)
                self._pending_timers -= 1
                self._now_global[site] = max(self._now_global[site], fire_global)
                stamp = make_timer_stamp(
                    f"{site}.timer", fire_global, self.timer_ratio
                )
                if self.obs.enabled:
                    with self.obs.span(
                        "timer.fire",
                        site=site,
                        op=node.kind,
                        node=node.name,
                        granule=fire_global,
                    ) as span:
                        emissions = node.on_timer(stamp, payload)
                        span.set(emitted=len(emissions))
                else:
                    emissions = node.on_timer(stamp, payload)
                for emission in emissions:
                    detections.extend(self._emit_from(node, emission))
            self._now_global[site] = max(self._now_global[site], global_time)
        return detections

    # --- statistics -----------------------------------------------------------

    def message_count(self) -> int:
        """Total cross-site messages sent so far."""
        return len(self.message_log)

    def bytes_sent(self) -> int:
        """Total approximate message volume sent so far."""
        return sum(m.size for m in self.message_log)

    def detections_of(self, name: str) -> list[EventOccurrence]:
        """All recorded occurrences of one registered composite event."""
        return [d.occurrence for d in self.detections if d.name == name]

    def prune_before(self, global_time: int) -> int:
        """Garbage-collect node buffers below a granule horizon (all sites)."""
        return sum(node.prune_before(global_time) for node in self.graph.nodes())


class _SiteTimerService:
    """Adapter giving a temporal node timers on its placement site."""

    def __init__(self, owner: DistributedDetector, site: str) -> None:
        self._owner = owner
        self._site = site

    def schedule(self, node: Node, fire_global: int, payload: Any) -> None:
        self._owner.schedule_at(self._site, node, fire_global, payload)
