"""Empirical verification of the paper's theorems and propositions.

* :mod:`repro.analysis.universe` — reproducible random generators of
  primitive and composite timestamps.
* :mod:`repro.analysis.properties` — checkers for every numbered theorem
  and proposition, returning violation lists (empty = property holds).
* :mod:`repro.analysis.metrics` — comparability/violation statistics used
  by the ordering benchmarks.
"""

from repro.analysis.universe import (
    random_composite,
    random_composite_universe,
    random_primitive,
    random_primitive_universe,
)
from repro.analysis.properties import (
    PropertyReport,
    check_all,
    check_proposition_4_1,
    check_proposition_4_2,
    check_theorem_4_1,
    check_theorem_5_1,
    check_theorem_5_2,
    check_theorem_5_3,
    check_theorem_5_4,
    theorem_5_3_counterexample,
    theorem_5_4_counterexample,
)
from repro.analysis.distribution import (
    RelationDistribution,
    measure_distribution,
    sweep_distributions,
)
from repro.analysis.metrics import (
    OrderingProfile,
    comparability_rate,
    irreflexivity_violations,
    profile_ordering,
    transitivity_violations,
)

__all__ = [
    "OrderingProfile",
    "RelationDistribution",
    "measure_distribution",
    "sweep_distributions",
    "PropertyReport",
    "profile_ordering",
    "theorem_5_4_counterexample",
    "check_all",
    "check_proposition_4_1",
    "check_proposition_4_2",
    "check_theorem_4_1",
    "check_theorem_5_1",
    "check_theorem_5_2",
    "check_theorem_5_3",
    "check_theorem_5_4",
    "comparability_rate",
    "irreflexivity_violations",
    "random_composite",
    "random_composite_universe",
    "random_primitive",
    "random_primitive_universe",
    "theorem_5_3_counterexample",
    "transitivity_violations",
]
