"""Reproducible random timestamp universes.

The theorem checkers and the ordering benchmarks quantify properties
over large random samples of timestamps; these generators produce them
deterministically from a seeded :class:`random.Random`.

Primitive stamps are generated *consistently with the time model*: a
stamp's global time is its local tick count integer-divided by the
granule ratio, so Proposition 4.1 (the local/global coupling) is
meaningful on generated data.  ``global_range`` controls how tightly
stamps cluster — tight clustering maximizes concurrency and incomparable
pairs, which is where the interesting semantics lives.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.time.composite import CompositeTimestamp, max_set
from repro.time.timestamps import PrimitiveTimestamp


def random_primitive(
    rng: random.Random,
    sites: Sequence[str],
    global_range: tuple[int, int] = (0, 12),
    ratio: int = 10,
) -> PrimitiveTimestamp:
    """One random primitive stamp with model-consistent global/local."""
    site = rng.choice(list(sites))
    global_time = rng.randint(*global_range)
    local = global_time * ratio + rng.randint(0, ratio - 1)
    return PrimitiveTimestamp(site=site, global_time=global_time, local=local)


def random_primitive_universe(
    rng: random.Random,
    count: int,
    sites: Sequence[str] | None = None,
    global_range: tuple[int, int] = (0, 12),
    ratio: int = 10,
) -> list[PrimitiveTimestamp]:
    """``count`` independent random primitive stamps."""
    if sites is None:
        sites = [f"s{i}" for i in range(1, 5)]
    return [
        random_primitive(rng, sites, global_range, ratio) for _ in range(count)
    ]


def random_composite(
    rng: random.Random,
    sites: Sequence[str] | None = None,
    constituents: int = 3,
    global_range: tuple[int, int] = (0, 12),
    ratio: int = 10,
) -> CompositeTimestamp:
    """One random composite stamp: the max-set of random constituents.

    Mirrors Definition 5.2 — constituents are drawn, then only the maxima
    are kept — so every generated stamp is a *valid* composite timestamp.
    """
    if sites is None:
        sites = [f"s{i}" for i in range(1, 5)]
    pool = [
        random_primitive(rng, sites, global_range, ratio)
        for _ in range(max(1, constituents))
    ]
    return CompositeTimestamp(max_set(pool))


def random_composite_universe(
    rng: random.Random,
    count: int,
    sites: Sequence[str] | None = None,
    constituents: int = 3,
    global_range: tuple[int, int] = (0, 12),
    ratio: int = 10,
) -> list[CompositeTimestamp]:
    """``count`` independent random composite stamps."""
    return [
        random_composite(rng, sites, constituents, global_range, ratio)
        for _ in range(count)
    ]
