"""Relation-distribution study: how decisive is the composite ordering?

The paper's "least restricted" requirement exists because a partial
order that leaves too many pairs undecided is useless for sequence
detection.  This module measures, over controlled random universes, the
probability of each composite relation — BEFORE/AFTER, CONCURRENT,
INCOMPARABLE — as a function of:

* **stamp width** — constituents per composite stamp (wider stamps are
  harder to order: every triple of the later stamp needs a witness);
* **time spread** — the global-granule range events land in (tighter
  spreads produce more concurrency).

The DIST benchmark regenerates the table; the headline observations are
that incomparability appears only for width ≥ 2 (primitive stamps are
never incomparable — Proposition 4.2.3) and grows with width, while
spreading events over a longer horizon restores decisiveness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from repro.analysis.universe import random_composite_universe
from repro.time.composite import CompositeRelation, composite_relation


@dataclass(frozen=True, slots=True)
class RelationDistribution:
    """Relative frequency of each composite relation over a universe."""

    width: int
    global_range: int
    pairs: int
    ordered: Fraction
    concurrent: Fraction
    incomparable: Fraction

    def as_row(self) -> list[str]:
        return [
            str(self.width),
            str(self.global_range),
            f"{float(self.ordered):.3f}",
            f"{float(self.concurrent):.3f}",
            f"{float(self.incomparable):.3f}",
        ]


def measure_distribution(
    width: int,
    global_range: int,
    universe_size: int = 40,
    seed: int = 0,
    sites: int = 4,
) -> RelationDistribution:
    """Sample a universe and tabulate the pairwise relation frequencies."""
    rng = random.Random(seed)
    universe = random_composite_universe(
        rng,
        universe_size,
        sites=[f"s{i}" for i in range(1, sites + 1)],
        constituents=width,
        global_range=(0, global_range),
    )
    counts = {relation: 0 for relation in CompositeRelation}
    pairs = 0
    for i, a in enumerate(universe):
        for b in universe[i + 1 :]:
            counts[composite_relation(a, b)] += 1
            pairs += 1
    ordered = counts[CompositeRelation.BEFORE] + counts[CompositeRelation.AFTER]
    return RelationDistribution(
        width=width,
        global_range=global_range,
        pairs=pairs,
        ordered=Fraction(ordered, pairs),
        concurrent=Fraction(counts[CompositeRelation.CONCURRENT], pairs),
        incomparable=Fraction(counts[CompositeRelation.INCOMPARABLE], pairs),
    )


def sweep_distributions(
    widths: tuple[int, ...] = (1, 2, 3, 5),
    global_ranges: tuple[int, ...] = (6, 20, 60),
    universe_size: int = 40,
    seed: int = 0,
) -> list[RelationDistribution]:
    """The DIST benchmark's full sweep."""
    return [
        measure_distribution(width, global_range, universe_size, seed)
        for width in widths
        for global_range in global_ranges
    ]
