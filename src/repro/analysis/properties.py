"""Checkers for every numbered theorem and proposition in the paper.

Each ``check_*`` function sweeps a sample (random universe or exhaustive
small-domain enumeration) and returns a :class:`PropertyReport` whose
``violations`` list is empty iff the property held on the sample.  The
tests assert emptiness for the properties that are true; for the two
claims we found to be *false as stated* — the left-to-right direction of
Theorem 5.3, and Theorem 5.4 under the literal ``<_p`` reading of
Definition 5.9 — dedicated functions expose minimal counterexamples, and
the checkers verify the *corrected* statements (see EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.universe import (
    random_composite_universe,
    random_primitive_universe,
)
from repro.time.composite import (
    CompositeTimestamp,
    composite_concurrent,
    composite_dominated_by,
    composite_happens_before,
    composite_weak_leq,
    max_of,
    max_of_cases,
    max_set,
)
from repro.time.timestamps import (
    PrimitiveTimestamp,
    concurrent,
    happens_before,
    simultaneous,
    weak_leq,
)


@dataclass
class PropertyReport:
    """Outcome of sweeping one property over a sample."""

    name: str
    checked: int
    violations: list[Any] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "holds" if self.holds else f"{len(self.violations)} violations"
        return f"{self.name}: {status} over {self.checked} checks"


# --- Section 4: primitive timestamps ------------------------------------------


def check_theorem_4_1(
    stamps: Sequence[PrimitiveTimestamp],
) -> PropertyReport:
    """Theorem 4.1: primitive ``<`` is irreflexive and transitive."""
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        checked += 1
        if happens_before(a, a):
            violations.append(("irreflexive", a))
    for a in stamps:
        for b in stamps:
            if not happens_before(a, b):
                continue
            for c in stamps:
                checked += 1
                if happens_before(b, c) and not happens_before(a, c):
                    violations.append(("transitive", a, b, c))
    return PropertyReport("theorem 4.1 (primitive < strict partial order)", checked, violations)


def check_proposition_4_1(
    stamps: Sequence[PrimitiveTimestamp],
) -> PropertyReport:
    """Proposition 4.1: local/global coupling and concurrency spread.

    1. ``local1 < local2 ⟹ global1 <= global2``;
    2. ``local1 = local2 ⟹ global1 = global2``;
    3. ``T1 ~ T2 ⟹ |global1 - global2| <= 1``.

    Items 1-2 presume stamps generated under one granule ratio (as
    :mod:`repro.analysis.universe` does).
    """
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        for b in stamps:
            checked += 1
            if a.local < b.local and not a.global_time <= b.global_time:
                violations.append(("4.1.1", a, b))
            if a.local == b.local and a.global_time != b.global_time:
                violations.append(("4.1.2", a, b))
            if concurrent(a, b) and abs(a.global_time - b.global_time) > 1:
                violations.append(("4.1.3", a, b))
    return PropertyReport("proposition 4.1 (local/global coupling)", checked, violations)


def check_proposition_4_2(
    stamps: Sequence[PrimitiveTimestamp],
) -> PropertyReport:
    """Proposition 4.2, items 1-10, checked pairwise/triple-wise.

    The two *negative* claims of item 6 (concurrency is not a congruence
    and not transitive) are existence statements about counterexamples,
    not universally-quantified properties, so they are exercised by the
    dedicated tests rather than swept here.
    """
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        for b in stamps:
            checked += 1
            # (1) asymmetry of <.
            if happens_before(a, b) and happens_before(b, a):
                violations.append(("4.2.1", a, b))
            # (2) antisymmetry of ⪯ up to ~.
            if weak_leq(a, b) and weak_leq(b, a) and not concurrent(a, b):
                violations.append(("4.2.2", a, b))
            # (3) exactly one of <, >, ~.
            count = sum(
                (happens_before(a, b), happens_before(b, a), concurrent(a, b))
            )
            if count != 1:
                violations.append(("4.2.3", a, b))
            # (4) totality of ⪯.
            if not (weak_leq(a, b) or weak_leq(b, a)):
                violations.append(("4.2.4", a, b))
            # (5) same-site concurrency is simultaneity.
            if concurrent(a, b) and a.site == b.site and not simultaneous(a, b):
                violations.append(("4.2.5", a, b))
            # (9) not < implies reverse ⪯.
            if not happens_before(a, b) and not weak_leq(b, a):
                violations.append(("4.2.9", a, b))
            # (10) mutually unordered implies concurrent.
            if (
                not happens_before(a, b)
                and not happens_before(b, a)
                and not concurrent(a, b)
            ):
                violations.append(("4.2.10", a, b))
    for a in stamps:
        for b in stamps:
            for c in stamps:
                checked += 1
                # (6) simultaneity is a congruence for <.
                if simultaneous(a, b) and happens_before(a, c) and not happens_before(b, c):
                    violations.append(("4.2.6", a, b, c))
                # (7) a<b, b~c ⟹ a⪯c.
                if happens_before(a, b) and concurrent(b, c) and not weak_leq(a, c):
                    violations.append(("4.2.7", a, b, c))
                # (8) a~b, b<c ⟹ a⪯c.
                if concurrent(a, b) and happens_before(b, c) and not weak_leq(a, c):
                    violations.append(("4.2.8", a, b, c))
    return PropertyReport("proposition 4.2 (items 1-10)", checked, violations)


# --- Section 5: composite timestamps -------------------------------------------


def check_theorem_5_1(
    universes: Sequence[Sequence[PrimitiveTimestamp]],
) -> PropertyReport:
    """Theorem 5.1: the max-set of any stamp set is pairwise concurrent."""
    violations: list[Any] = []
    checked = 0
    for stamps in universes:
        if not stamps:
            continue
        maxima = max_set(stamps)
        for a in maxima:
            for b in maxima:
                checked += 1
                if not concurrent(a, b):
                    violations.append((sorted(map(str, stamps)), str(a), str(b)))
    return PropertyReport("theorem 5.1 (max-set pairwise concurrent)", checked, violations)


def check_theorem_5_2(
    stamps: Sequence[CompositeTimestamp],
) -> PropertyReport:
    """Theorem 5.2: composite ``<_p`` is irreflexive and transitive."""
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        checked += 1
        if composite_happens_before(a, a):
            violations.append(("irreflexive", a))
    for a in stamps:
        for b in stamps:
            if not composite_happens_before(a, b):
                continue
            for c in stamps:
                checked += 1
                if composite_happens_before(b, c) and not composite_happens_before(a, c):
                    violations.append(("transitive", a, b, c))
    return PropertyReport("theorem 5.2 (composite <_p strict partial order)", checked, violations)


def check_theorem_5_3(
    stamps: Sequence[CompositeTimestamp],
    corrected: bool = True,
) -> PropertyReport:
    """Theorem 5.3: ``T1 ⪯ T2 ⟺ T1 ~ T2 or T1 < T2``.

    With ``corrected=True`` (default) only the right-to-left direction —
    the one that is actually true — is checked.  With
    ``corrected=False`` the paper's full equivalence is swept, and the
    report's violations exhibit the failure of the left-to-right
    direction (cf. :func:`theorem_5_3_counterexample`).
    """
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        for b in stamps:
            checked += 1
            rhs = composite_concurrent(a, b) or composite_happens_before(a, b)
            lhs = composite_weak_leq(a, b)
            if rhs and not lhs:
                violations.append(("right-to-left", a, b))
            if not corrected and lhs and not rhs:
                violations.append(("left-to-right", a, b))
    label = "theorem 5.3" + (" (corrected: ⇐ only)" if corrected else " (as stated)")
    return PropertyReport(label, checked, violations)


def theorem_5_3_counterexample() -> tuple[CompositeTimestamp, CompositeTimestamp]:
    """A minimal counterexample to Theorem 5.3's left-to-right direction.

    ``T1 = {(s1,5,50), (s4,6,65)}`` and ``T2 = {(s2,7,70), (s3,6,60)}``:
    every pair satisfies the primitive ``⪯`` (so ``T1 ⪯ T2``), but the
    pair ``(s1,5,50) < (s2,7,70)`` rules out ``T1 ~ T2`` while
    ``(s3,6,60)`` has no ``T1`` element below it, ruling out
    ``T1 <_p T2`` (and ``(s4,6,65)`` rules out ``T1 <_g T2`` as well).
    """
    t1 = CompositeTimestamp.from_triples([("s1", 5, 50), ("s4", 6, 65)])
    t2 = CompositeTimestamp.from_triples([("s2", 7, 70), ("s3", 6, 60)])
    return t1, t2


def check_theorem_5_4(
    stamps: Sequence[CompositeTimestamp],
    ordering: Callable[[CompositeTimestamp, CompositeTimestamp], bool] = composite_dominated_by,
) -> PropertyReport:
    """Theorem 5.4: ``Max(T1, T2) = max(T1 ∪ T2)``.

    The ``Max`` under test is Definition 5.9's case analysis with the
    given ordering; with the domination ordering ``<_g`` (default) the
    theorem holds, with the literal ``<_p`` it fails (see
    :func:`theorem_5_4_counterexample`).
    """
    violations: list[Any] = []
    checked = 0
    for a in stamps:
        for b in stamps:
            checked += 1
            via_cases = max_of_cases(a, b, ordering)
            via_union = max_of(a, b)
            if via_cases != via_union:
                violations.append((a, b, via_cases, via_union))
    name = f"theorem 5.4 (Max = max(union)) under {getattr(ordering, '__name__', ordering)}"
    return PropertyReport(name, checked, violations)


def theorem_5_4_counterexample() -> tuple[CompositeTimestamp, CompositeTimestamp]:
    """Inputs where Definition 5.9 with literal ``<_p`` loses information.

    ``T1 = {(s1,8,80)}`` and ``T2 = {(s2,6,60), (s3,7,70)}``:
    ``T2 <_p T1`` holds via the witness ``(s2,6,60) < (s1,8,80)``, so the
    literal case analysis returns ``T1`` — dropping ``(s3,7,70)``, which
    is concurrent with ``(s1,8,80)`` and belongs to ``max(T1 ∪ T2)``.
    """
    t1 = CompositeTimestamp.from_triples([("s1", 8, 80)])
    t2 = CompositeTimestamp.from_triples([("s2", 6, 60), ("s3", 7, 70)])
    return t1, t2


# --- sweep driver -----------------------------------------------------------------


def check_all(
    seed: int = 0,
    primitive_count: int = 60,
    composite_count: int = 40,
    sets_count: int = 50,
) -> list[PropertyReport]:
    """Run every checker over fresh random universes; returns the reports."""
    rng = random.Random(seed)
    primitives = random_primitive_universe(rng, primitive_count)
    composites = random_composite_universe(rng, composite_count)
    stamp_sets = [
        random_primitive_universe(rng, rng.randint(1, 6)) for _ in range(sets_count)
    ]
    return [
        check_theorem_4_1(primitives[:30]),
        check_proposition_4_1(primitives),
        check_proposition_4_2(primitives[:30]),
        check_theorem_5_1(stamp_sets),
        check_theorem_5_2(composites),
        check_theorem_5_3(composites),
        check_theorem_5_4(composites),
    ]
