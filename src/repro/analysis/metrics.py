"""Ordering statistics for the restrictiveness/validity benchmarks.

Section 5.1's third requirement — *least restrictedness* — is an
order-containment claim; empirically it shows up as the fraction of
random timestamp pairs an ordering can decide.  These helpers compute
that fraction and count irreflexivity/transitivity violations for any
candidate ordering predicate, so the benchmarks can tabulate all five
candidates plus the baseline side by side.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
Ordering = Callable[[T, T], bool]


def multiset_diff(
    expected: Iterable[T], actual: Iterable[T]
) -> tuple[list[T], list[T]]:
    """Multiset difference: (missing from actual, extra in actual).

    The oracle-scoring primitive of the conformance runner: detector
    output is compared against the denotational oracle as multisets of
    canonical timestamp strings, and the two sorted remainder lists name
    exactly which occurrences diverged.  Both lists empty ⇔ equal.
    """
    want = Counter(expected)
    got = Counter(actual)
    missing = sorted((want - got).elements())
    extra = sorted((got - want).elements())
    return missing, extra


def comparability_rate(universe: Sequence[T], ordering: Ordering) -> Fraction:
    """Fraction of distinct ordered pairs decided by ``ordering``.

    A pair ``(a, b)`` counts as decided when ``a ≺ b`` or ``b ≺ a``.
    Returns 0 for universes with fewer than two elements.
    """
    n = len(universe)
    if n < 2:
        return Fraction(0)
    decided = 0
    total = 0
    for i, a in enumerate(universe):
        for b in universe[i + 1 :]:
            total += 1
            if ordering(a, b) or ordering(b, a):
                decided += 1
    return Fraction(decided, total)


def irreflexivity_violations(universe: Sequence[T], ordering: Ordering) -> list[T]:
    """Elements with ``a ≺ a`` (must be empty for a strict order)."""
    return [a for a in universe if ordering(a, a)]


def transitivity_violations(
    universe: Sequence[T], ordering: Ordering, limit: int | None = None
) -> list[tuple[T, T, T]]:
    """Triples with ``a ≺ b``, ``b ≺ c`` but not ``a ≺ c``.

    ``limit`` stops the sweep early once that many violations are found
    (the benchmarks only need existence and a rate estimate).
    """
    violations: list[tuple[T, T, T]] = []
    for a in universe:
        for b in universe:
            if not ordering(a, b):
                continue
            for c in universe:
                if ordering(b, c) and not ordering(a, c):
                    violations.append((a, b, c))
                    if limit is not None and len(violations) >= limit:
                        return violations
    return violations


@dataclass(frozen=True, slots=True)
class OrderingProfile:
    """Summary row for one candidate ordering over one universe."""

    name: str
    comparability: Fraction
    irreflexivity_violations: int
    transitivity_violations: int

    @property
    def is_valid_partial_order(self) -> bool:
        return (
            self.irreflexivity_violations == 0 and self.transitivity_violations == 0
        )


def profile_ordering(
    name: str,
    universe: Sequence[T],
    ordering: Ordering,
    violation_limit: int | None = 100,
) -> OrderingProfile:
    """Compute the benchmark row for one ordering."""
    return OrderingProfile(
        name=name,
        comparability=comparability_rate(universe, ordering),
        irreflexivity_violations=len(irreflexivity_violations(universe, ordering)),
        transitivity_violations=len(
            transitivity_violations(universe, ordering, violation_limit)
        ),
    )
