"""Primitive event types and the type registry (Section 3.1).

The paper (after [10]) classifies site-related primitive events into
*time events*, *data manipulation (database) events*, *transaction
events* and *abstract (explicit) events*.  The classification matters for
the simultaneity assumptions of Section 3.1:

1. each non-temporal event has at least one temporal event happening
   simultaneously (every occurrence happens *at* a clock tick);
2. each composite event has at least one primitive event happening
   simultaneously (its timestamp is built from primitive stamps);
3. no two *database* events happen simultaneously;
4. no two *explicit* events happen simultaneously.

:class:`TypeRegistry` owns the event-type namespace of one system and is
consulted by the history validator
(:meth:`repro.events.occurrences.History.validate_simultaneity`) and the
detection engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateEventTypeError, UnknownEventTypeError


class EventClass(enum.Enum):
    """The primitive event classes of Section 3.1."""

    TEMPORAL = "temporal"
    DATABASE = "database"
    TRANSACTION = "transaction"
    EXPLICIT = "explicit"

    @property
    def excludes_simultaneity(self) -> bool:
        """Whether two events of this class may not be simultaneous.

        Assumptions 3 and 4 of Section 3.1: database events and explicit
        events each exclude same-class simultaneity.
        """
        return self in (EventClass.DATABASE, EventClass.EXPLICIT)


@dataclass(frozen=True, slots=True)
class EventType:
    """A named primitive event type.

    ``site`` restricts the type to one site when set (the common case for
    database and transaction events, which are raised by one DBMS);
    ``None`` means occurrences may be raised anywhere.
    """

    name: str
    event_class: EventClass = EventClass.EXPLICIT
    site: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise UnknownEventTypeError(
                f"event type name must be a non-empty identifier, got {self.name!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class TypeRegistry:
    """The event-type namespace of one (distributed) system.

    >>> registry = TypeRegistry()
    >>> _ = registry.define("deposit", EventClass.DATABASE, site="bank1")
    >>> registry["deposit"].event_class
    <EventClass.DATABASE: 'database'>
    """

    _types: dict[str, EventType] = field(default_factory=dict)

    def define(
        self,
        name: str,
        event_class: EventClass = EventClass.EXPLICIT,
        site: str | None = None,
        description: str = "",
    ) -> EventType:
        """Register a new event type; duplicate names are rejected."""
        if name in self._types:
            raise DuplicateEventTypeError(f"event type {name!r} is already defined")
        event_type = EventType(
            name=name, event_class=event_class, site=site, description=description
        )
        self._types[name] = event_type
        return event_type

    def define_many(
        self, names: list[str], event_class: EventClass = EventClass.EXPLICIT
    ) -> list[EventType]:
        """Register several types of the same class in one call."""
        return [self.define(name, event_class) for name in names]

    def get(self, name: str) -> EventType:
        """Look up a type; raises :class:`UnknownEventTypeError` if absent."""
        try:
            return self._types[name]
        except KeyError:
            raise UnknownEventTypeError(f"event type {name!r} is not defined") from None

    def __getitem__(self, name: str) -> EventType:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[EventType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> list[str]:
        """All registered type names in definition order."""
        return list(self._types)
