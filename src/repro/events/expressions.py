"""The Snoop composite-event expression AST (Sections 3.2 and 5.3).

Composite events are event expressions over primitive event types and the
Snoop operators.  The paper (Section 5.3) re-defines the operator
semantics for distributed environments over composite timestamps and the
``Max`` operator; the AST here is shared by the denotational oracle
(:mod:`repro.events.semantics`) and the operational detector
(:mod:`repro.detection`).

Operators
---------

``Or(E1, E2)``
    Disjunction: occurs whenever either occurs.
``And(E1, E2)``
    Conjunction: occurs when both have occurred, in any order; the
    timestamp is ``Max(T1, T2)``.
``Sequence(E1, E2)`` (``;``)
    ``E1`` then ``E2`` with ``T(E1) < T(E2)`` under the composite ``<_p``.
``Not(E2, E1, E3)`` (``¬(E2)[E1, E3]``)
    Non-occurrence of ``E2`` in the open interval ``(T(E1), T(E3))``.
``Aperiodic(E1, E2, E3)`` (``A``)
    Non-cumulative: signalled on each ``E2`` inside the half-open window
    opened by ``E1`` and not yet closed by ``E3``.
``AperiodicStar(E1, E2, E3)`` (``A*``)
    Cumulative: signalled on ``E3``, accumulating every ``E2`` since
    ``E1``.
``Periodic(E1, period, E3)`` (``P``)
    Temporal event every ``period`` global granules inside the window.
``PeriodicStar(E1, period, E3)`` (``P*``)
    Cumulative periodic: signalled on ``E3`` with the accumulated ticks.
``Plus(E1, offset)``
    Temporal offset: occurs ``offset`` global granules after each ``E1``.

Expressions compose with Python operators: ``a | b`` (Or), ``a & b``
(And), ``a >> b`` (Sequence), matching the textual forms accepted by
:func:`repro.events.parser.parse_expression`.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import ExpressionError


class EventExpression:
    """Base class for Snoop event expressions.

    Subclasses are frozen dataclasses; expressions are immutable,
    hashable values suitable as dictionary keys in the detector's
    subexpression-sharing table.
    """

    def __or__(self, other: "EventExpression") -> "Or":
        return Or(self, _coerce(other))

    def __and__(self, other: "EventExpression") -> "And":
        return And(self, _coerce(other))

    def __rshift__(self, other: "EventExpression") -> "Sequence":
        return Sequence(self, _coerce(other))

    def children(self) -> tuple["EventExpression", ...]:
        """Direct sub-expressions (empty for primitives)."""
        raise NotImplementedError

    def walk(self) -> Iterator["EventExpression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def primitive_types(self) -> set[str]:
        """Names of the primitive event types referenced by the expression."""
        return {
            node.name for node in self.walk() if isinstance(node, Primitive)
        }

    def depth(self) -> int:
        """Height of the expression tree (primitives have depth 1)."""
        kids = self.children()
        return 1 + (max(child.depth() for child in kids) if kids else 0)


def _coerce(value: "EventExpression | str") -> "EventExpression":
    if isinstance(value, EventExpression):
        return value
    if isinstance(value, str):
        return Primitive(value)
    raise ExpressionError(f"cannot use {value!r} as an event expression")


@dataclass(frozen=True, slots=True)
class Primitive(EventExpression):
    """A reference to a primitive event type by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ExpressionError("primitive event name must be non-empty")

    def children(self) -> tuple[EventExpression, ...]:
        return ()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Or(EventExpression):
    """Disjunction ``E1 ∨ E2``."""

    left: EventExpression
    right: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True, slots=True)
class And(EventExpression):
    """Conjunction ``E1 ∧ E2`` — both occur, in any order (Section 5.3)."""

    left: EventExpression
    right: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, slots=True)
class Sequence(EventExpression):
    """Sequence ``E1 ; E2`` — ``E1`` strictly happen-before ``E2``.

    In the distributed semantics the ordering test is the composite
    ``<_p`` (Definition 5.3.2); cross-site pairs closer than two global
    granules are concurrent and do *not* form a sequence.
    """

    first: EventExpression
    second: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.first, self.second)

    def __str__(self) -> str:
        return f"({self.first} ; {self.second})"


@dataclass(frozen=True, slots=True)
class Not(EventExpression):
    """Non-occurrence ``¬(E2)[E1, E3]`` of ``E2`` between ``E1`` and ``E3``."""

    negated: EventExpression
    opener: EventExpression
    closer: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.negated, self.opener, self.closer)

    def __str__(self) -> str:
        return f"not({self.negated})[{self.opener}, {self.closer}]"


@dataclass(frozen=True, slots=True)
class Aperiodic(EventExpression):
    """Non-cumulative aperiodic ``A(E1, E2, E3)``.

    Signalled on each occurrence of ``E2`` inside the window opened by
    ``E1`` and not yet closed by ``E3``.
    """

    opener: EventExpression
    body: EventExpression
    closer: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.opener, self.body, self.closer)

    def __str__(self) -> str:
        return f"A({self.opener}, {self.body}, {self.closer})"


@dataclass(frozen=True, slots=True)
class AperiodicStar(EventExpression):
    """Cumulative aperiodic ``A*(E1, E2, E3)``.

    Signalled on ``E3``, carrying every ``E2`` accumulated since the
    opening ``E1``; the timestamp folds all constituents through ``Max``.
    """

    opener: EventExpression
    body: EventExpression
    closer: EventExpression

    def children(self) -> tuple[EventExpression, ...]:
        return (self.opener, self.body, self.closer)

    def __str__(self) -> str:
        return f"A*({self.opener}, {self.body}, {self.closer})"


@dataclass(frozen=True, slots=True)
class Periodic(EventExpression):
    """Periodic ``P(E1, period, E3)`` — a tick every ``period`` granules.

    ``period`` is measured in global granules (``g_g`` units); ticks are
    generated by the detecting site's clock starting one period after the
    opening ``E1``.
    """

    opener: EventExpression
    period: int
    closer: EventExpression

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ExpressionError(f"period must be positive, got {self.period}")

    def children(self) -> tuple[EventExpression, ...]:
        return (self.opener, self.closer)

    def __str__(self) -> str:
        return f"P({self.opener}, {self.period}, {self.closer})"


@dataclass(frozen=True, slots=True)
class PeriodicStar(EventExpression):
    """Cumulative periodic ``P*(E1, period, E3)`` — ticks reported on ``E3``."""

    opener: EventExpression
    period: int
    closer: EventExpression

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ExpressionError(f"period must be positive, got {self.period}")

    def children(self) -> tuple[EventExpression, ...]:
        return (self.opener, self.closer)

    def __str__(self) -> str:
        return f"P*({self.opener}, {self.period}, {self.closer})"


@dataclass(frozen=True, slots=True)
class Plus(EventExpression):
    """Temporal offset ``E1 + offset`` granules."""

    base: EventExpression
    offset: int

    def __post_init__(self) -> None:
        if self.offset <= 0:
            raise ExpressionError(f"offset must be positive, got {self.offset}")

    def children(self) -> tuple[EventExpression, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"({self.base} + {self.offset})"


@dataclass(frozen=True, slots=True)
class Times(EventExpression):
    """Frequency operator ``TIMES(n, E)``: every ``n``-th occurrence.

    Signalled when the ``n``-th occurrence of ``E`` since the last
    signal arrives, carrying all ``n`` occurrences as constituents and
    the ``Max`` of their timestamps — Sentinel's frequency/occurrence
    counting extension.
    """

    count: int
    body: EventExpression

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ExpressionError(f"count must be positive, got {self.count}")

    def children(self) -> tuple[EventExpression, ...]:
        return (self.body,)

    def __str__(self) -> str:
        return f"times({self.count}, {self.body})"


_COMPARATORS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True, slots=True)
class Comparison:
    """One attribute comparison of a parameter filter, e.g. ``price > 100``.

    ``value`` is an int or a string; a missing attribute never matches;
    type mismatches (string vs int ordering) never match rather than
    raising — event streams are heterogeneous.
    """

    attribute: str
    op: str
    value: int | str

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")
        if not self.attribute:
            raise ExpressionError("comparison needs an attribute name")

    def matches(self, parameters: Mapping[str, Any]) -> bool:
        """Whether an occurrence's parameters satisfy the comparison."""
        if self.attribute not in parameters:
            return False
        actual = parameters[self.attribute]
        try:
            return bool(_COMPARATORS[self.op](actual, self.value))
        except TypeError:
            return False

    def __str__(self) -> str:
        value = repr(self.value) if isinstance(self.value, str) else self.value
        return f"{self.attribute} {self.op} {value}"


@dataclass(frozen=True, slots=True)
class Filter(EventExpression):
    """A parameter filter ``E[attr > value, ...]`` (mask on occurrences).

    An occurrence of ``base`` passes iff *every* comparison matches —
    Sentinel's event masks, restricted to attribute/constant tests.
    """

    base: EventExpression
    conditions: tuple[Comparison, ...]

    def __post_init__(self) -> None:
        if not self.conditions:
            raise ExpressionError("a filter needs at least one comparison")

    def accepts(self, parameters: Mapping[str, Any]) -> bool:
        """Whether all comparisons match the parameters."""
        return all(condition.matches(parameters) for condition in self.conditions)

    def children(self) -> tuple[EventExpression, ...]:
        return (self.base,)

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.conditions)
        return f"{self.base}[{inner}]"
