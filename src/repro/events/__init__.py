"""Event model: types, occurrences, Snoop expressions and their semantics.

* :mod:`repro.events.types` — primitive event classes and the type
  registry (Section 3.1).
* :mod:`repro.events.occurrences` — event occurrences carrying composite
  timestamps and parameters, plus per-site histories.
* :mod:`repro.events.expressions` — the Snoop composite-event AST
  (Sections 3.2 and 5.3).
* :mod:`repro.events.parser` — a text parser for Snoop expressions.
* :mod:`repro.events.semantics` — the denotational (unrestricted-context)
  semantics used as the oracle for the detection engine.
"""

from repro.events.types import EventClass, EventType, TypeRegistry
from repro.events.occurrences import EventOccurrence, History
from repro.events.expressions import (
    And,
    Aperiodic,
    AperiodicStar,
    Comparison,
    EventExpression,
    Filter,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Primitive,
    Sequence,
    Times,
)
from repro.events.parser import parse_expression
from repro.events.semantics import evaluate

__all__ = [
    "And",
    "Aperiodic",
    "AperiodicStar",
    "Comparison",
    "Filter",
    "Times",
    "EventClass",
    "EventExpression",
    "EventOccurrence",
    "EventType",
    "History",
    "Not",
    "Or",
    "Periodic",
    "PeriodicStar",
    "Plus",
    "Primitive",
    "Sequence",
    "TypeRegistry",
    "evaluate",
    "parse_expression",
]
