"""Denotational semantics of distributed Snoop expressions (Section 5.3).

A distributed event is a function from composite timestamps to booleans;
operationally, given a finite :class:`~repro.events.occurrences.History`
of primitive occurrences, each operator denotes the *set of occurrences*
of the composite event, with timestamps assembled through the ``Max``
operator.  :func:`evaluate` computes that set in the **unrestricted
parameter context** (all valid constituent combinations) and serves as
the correctness oracle for the operational detector
(:mod:`repro.detection`).

The paper's Section 5.3 formulae (reproduced below next to each operator)
leave two conventions implicit for the partially-ordered setting; we fix
them as follows and exercise them in the tests:

* an interval "between" two composite stamps always means the *open*
  interval under the composite ``<_p`` (Definition 5.5);
* a window opened by ``E1`` is closed by the first ``E3`` with
  ``T(E1) < T(E3)``; an ``E2`` concurrent with the closing ``E3`` does
  not belong to the window.

Temporal operators (``P``, ``P*``, ``Plus``) need a clock; the oracle
materializes timer ticks on a dedicated *timer site* whose granule index
equals the global time, mirroring how the simulator's detector raises
temporal events from its local clock.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ExpressionError
from repro.events.expressions import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpression,
    Filter,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Primitive,
    Sequence,
    Times,
)
from repro.events.occurrences import EventOccurrence, History
from repro.time.composite import (
    CompositeTimestamp,
    composite_happens_before,
    max_of,
    max_of_many,
)
from repro.time.timestamps import PrimitiveTimestamp

TIMER_SITE = "__timer__"


def merge_parameters(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> dict[str, Any]:
    """Merge event parameters; the later (right) constituent wins ties."""
    merged = dict(left)
    merged.update(right)
    return merged


def _pair(
    event_type: str, first: EventOccurrence, second: EventOccurrence
) -> EventOccurrence:
    """Combine two constituent occurrences through ``Max`` (Section 5.2)."""
    return EventOccurrence(
        event_type=event_type,
        timestamp=max_of(first.timestamp, second.timestamp),
        parameters=merge_parameters(first.parameters, second.parameters),
        constituents=(first, second),
    )


def _timer_stamp(global_time: int, ratio: int = 1) -> CompositeTimestamp:
    """A singleton stamp on the timer site at a given global granule."""
    return CompositeTimestamp.singleton(
        PrimitiveTimestamp(site=TIMER_SITE, global_time=global_time, local=global_time * ratio)
    )


def _window_closed(
    opener: EventOccurrence,
    upto: CompositeTimestamp,
    closers: list[EventOccurrence],
) -> bool:
    """Whether some closer falls strictly inside ``(T(opener), upto)``."""
    return any(
        composite_happens_before(opener.timestamp, c.timestamp)
        and composite_happens_before(c.timestamp, upto)
        for c in closers
    )


def evaluate(
    expression: EventExpression,
    history: History,
    label: str | None = None,
    timer_ratio: int = 1,
) -> list[EventOccurrence]:
    """All occurrences of ``expression`` over ``history`` (unrestricted).

    ``label`` names the resulting composite occurrences (defaults to the
    expression's textual form).  Results are returned in a deterministic
    order (sorted by constituent uids).

    >>> from repro.time.timestamps import PrimitiveTimestamp
    >>> h = History()
    >>> _ = h.record("e1", PrimitiveTimestamp("s1", 2, 20))
    >>> _ = h.record("e2", PrimitiveTimestamp("s2", 9, 90))
    >>> from repro.events.parser import parse_expression
    >>> len(evaluate(parse_expression("e1 ; e2"), h))
    1
    """
    name = label if label is not None else str(expression)
    occurrences = _evaluate(expression, history, name, timer_ratio)
    return sorted(occurrences, key=lambda o: tuple(c.uid for c in o.primitive_leaves()))


def _evaluate(
    expression: EventExpression,
    history: History,
    name: str,
    timer_ratio: int,
) -> list[EventOccurrence]:
    if isinstance(expression, Primitive):
        return history.of_type(expression.name)
    if isinstance(expression, Or):
        return _eval_or(expression, history, name, timer_ratio)
    if isinstance(expression, And):
        return _eval_and(expression, history, name, timer_ratio)
    if isinstance(expression, Sequence):
        return _eval_sequence(expression, history, name, timer_ratio)
    if isinstance(expression, Not):
        return _eval_not(expression, history, name, timer_ratio)
    if isinstance(expression, Aperiodic):
        return _eval_aperiodic(expression, history, name, timer_ratio)
    if isinstance(expression, AperiodicStar):
        return _eval_aperiodic_star(expression, history, name, timer_ratio)
    if isinstance(expression, Periodic):
        return _eval_periodic(expression, history, name, timer_ratio, cumulative=False)
    if isinstance(expression, PeriodicStar):
        return _eval_periodic(expression, history, name, timer_ratio, cumulative=True)
    if isinstance(expression, Plus):
        return _eval_plus(expression, history, name, timer_ratio)
    if isinstance(expression, Filter):
        return [
            occurrence
            for occurrence in _evaluate(expression.base, history, name, timer_ratio)
            if expression.accepts(occurrence.parameters)
        ]
    if isinstance(expression, Times):
        return _eval_times(expression, history, name, timer_ratio)
    raise ExpressionError(f"unknown expression node {type(expression).__name__}")


def _eval_or(
    node: Or, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``(E1 ∨ E2)(ts)``: either disjunct occurred at ``ts``."""
    results = []
    for side in (node.left, node.right):
        for occurrence in _evaluate(side, history, name, timer_ratio):
            results.append(
                EventOccurrence(
                    event_type=name,
                    timestamp=occurrence.timestamp,
                    parameters=dict(occurrence.parameters),
                    constituents=(occurrence,),
                )
            )
    return results


def _eval_and(
    node: And, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``(E1 ∧ E2)(ts) = ∃t1,t2: E1(t1) ∧ E2(t2)`` with ``ts = Max(t1,t2)``."""
    lefts = _evaluate(node.left, history, name, timer_ratio)
    rights = _evaluate(node.right, history, name, timer_ratio)
    return [_pair(name, l, r) for l in lefts for r in rights]


def _eval_sequence(
    node: Sequence, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``(E1 ; E2)(ts)``: both occur and ``t1 < t2`` under composite ``<_p``."""
    firsts = _evaluate(node.first, history, name, timer_ratio)
    seconds = _evaluate(node.second, history, name, timer_ratio)
    return [
        _pair(name, f, s)
        for f in firsts
        for s in seconds
        if composite_happens_before(f.timestamp, s.timestamp)
    ]


def _eval_not(
    node: Not, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``¬(E2)[E1, E3]``: ``E1`` then ``E3`` with no ``E2`` strictly between."""
    openers = _evaluate(node.opener, history, name, timer_ratio)
    closers = _evaluate(node.closer, history, name, timer_ratio)
    negated = _evaluate(node.negated, history, name, timer_ratio)
    results = []
    for opener in openers:
        for closer in closers:
            if not composite_happens_before(opener.timestamp, closer.timestamp):
                continue
            blocked = any(
                composite_happens_before(opener.timestamp, n.timestamp)
                and composite_happens_before(n.timestamp, closer.timestamp)
                for n in negated
            )
            if not blocked:
                results.append(_pair(name, opener, closer))
    return results


def _eval_aperiodic(
    node: Aperiodic, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``A(E1, E2, E3)``: each ``E2`` inside a window not yet closed by ``E3``."""
    openers = _evaluate(node.opener, history, name, timer_ratio)
    bodies = _evaluate(node.body, history, name, timer_ratio)
    closers = _evaluate(node.closer, history, name, timer_ratio)
    results = []
    for opener in openers:
        for body in bodies:
            if not composite_happens_before(opener.timestamp, body.timestamp):
                continue
            if not _window_closed(opener, body.timestamp, closers):
                results.append(_pair(name, opener, body))
    return results


def _eval_aperiodic_star(
    node: AperiodicStar, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``A*(E1, E2, E3)``: on ``E3``, accumulate every window ``E2``."""
    openers = _evaluate(node.opener, history, name, timer_ratio)
    bodies = _evaluate(node.body, history, name, timer_ratio)
    closers = _evaluate(node.closer, history, name, timer_ratio)
    results = []
    for opener in openers:
        for closer in closers:
            if not composite_happens_before(opener.timestamp, closer.timestamp):
                continue
            window = [
                b
                for b in bodies
                if composite_happens_before(opener.timestamp, b.timestamp)
                and composite_happens_before(b.timestamp, closer.timestamp)
            ]
            constituents = (opener, *window, closer)
            results.append(
                EventOccurrence(
                    event_type=name,
                    timestamp=max_of_many(c.timestamp for c in constituents),
                    parameters={
                        "accumulated": tuple(dict(b.parameters) for b in window),
                        **merge_parameters(opener.parameters, closer.parameters),
                    },
                    constituents=constituents,
                )
            )
    return results


def _eval_periodic(
    node: Periodic | PeriodicStar,
    history: History,
    name: str,
    timer_ratio: int,
    cumulative: bool,
) -> list[EventOccurrence]:
    """``P``/``P*``: timer ticks every ``period`` granules inside the window.

    Ticks for a window opened by ``E1`` start one period after the
    latest global granule of ``T(E1)`` and stop at the first closing
    ``E3``; with no closer the window is evaluated up to the last granule
    observed in the history (a finite-history cutoff).
    """
    openers = _evaluate(node.opener, history, name, timer_ratio)
    closers = _evaluate(node.closer, history, name, timer_ratio)
    horizon = _history_horizon(history)
    results = []
    for opener in openers:
        open_global = opener.timestamp.global_span()[1]
        closing = _first_closer(opener, closers)
        end_global = (
            closing.timestamp.global_span()[1] if closing is not None else horizon
        )
        ticks = []
        tick_global = open_global + node.period
        while tick_global <= end_global:
            stamp = _timer_stamp(tick_global, timer_ratio)
            if closing is not None and not composite_happens_before(
                stamp, closing.timestamp
            ):
                break
            tick = EventOccurrence(
                event_type=f"{name}.tick",
                timestamp=stamp,
                parameters={"tick_global": tick_global},
            )
            ticks.append(tick)
            tick_global += node.period
        if cumulative:
            if closing is not None:
                constituents = (opener, *ticks, closing)
                results.append(
                    EventOccurrence(
                        event_type=name,
                        timestamp=max_of_many(c.timestamp for c in constituents),
                        parameters={
                            "ticks": tuple(t.parameters["tick_global"] for t in ticks)
                        },
                        constituents=constituents,
                    )
                )
        else:
            results.extend(_pair(name, opener, tick) for tick in ticks)
    return results


def _eval_plus(
    node: Plus, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``E1 + offset``: a timer tick ``offset`` granules after each ``E1``."""
    bases = _evaluate(node.base, history, name, timer_ratio)
    results = []
    for base in bases:
        tick_global = base.timestamp.global_span()[1] + node.offset
        tick = EventOccurrence(
            event_type=f"{name}.tick",
            timestamp=_timer_stamp(tick_global, timer_ratio),
            parameters={"tick_global": tick_global},
        )
        results.append(_pair(name, base, tick))
    return results


def _first_closer(
    opener: EventOccurrence, closers: list[EventOccurrence]
) -> EventOccurrence | None:
    """The earliest closer strictly after ``opener`` (min by global span)."""
    after = [
        c
        for c in closers
        if composite_happens_before(opener.timestamp, c.timestamp)
    ]
    if not after:
        return None
    return min(after, key=lambda c: (c.timestamp.global_span()[1], c.uid))


def _history_horizon(history: History) -> int:
    """The largest global granule observed anywhere in the history."""
    horizon = 0
    for occurrence in history:
        horizon = max(horizon, occurrence.timestamp.global_span()[1])
    return horizon


def _eval_times(
    node: Times, history: History, name: str, timer_ratio: int
) -> list[EventOccurrence]:
    """``times(n, E)``: consecutive batches of ``n`` occurrences.

    Occurrences are batched in the canonical linearization (latest global
    granule, then uid) — the order an in-timestamp-order feed delivers.
    """
    bodies = _evaluate(node.body, history, name, timer_ratio)
    bodies.sort(key=lambda o: (o.timestamp.global_span()[1], o.uid))
    results = []
    for start in range(0, len(bodies) - node.count + 1, node.count):
        batch = tuple(bodies[start : start + node.count])
        merged: dict[str, Any] = {}
        for body in batch:
            merged = merge_parameters(merged, body.parameters)
        merged["count"] = node.count
        results.append(
            EventOccurrence(
                event_type=name,
                timestamp=max_of_many(o.timestamp for o in batch),
                parameters=merged,
                constituents=batch,
            )
        )
    return results
