"""A text parser for Snoop composite-event expressions.

Accepts the surface syntax used throughout the Sentinel papers::

    E1 ; E2                      sequence
    E1 and E2                    conjunction
    E1 or E2                     disjunction
    not(E2)[E1, E3]              non-occurrence
    A(E1, E2, E3)                aperiodic
    A*(E1, E2, E3)               cumulative aperiodic
    P(E1, 10, E3)                periodic (period in global granules)
    P*(E1, 10, E3)               cumulative periodic
    E1 + 10                      temporal offset (granules)
    times(3, E1)                 every third occurrence
    E1[price > 100, sym == 'X']  parameter filter (event mask)

``;`` binds loosest, then ``or``, then ``and``; all binary operators are
left-associative; parentheses group.  Keywords are case-insensitive for
the operator names (``a``/``A``), identifiers are case-sensitive.

>>> str(parse_expression("e1 ; (e2 and e3)"))
'(e1 ; (e2 and e3))'
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.events.expressions import (
    And,
    Aperiodic,
    AperiodicStar,
    Comparison,
    EventExpression,
    Filter,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Primitive,
    Sequence,
    Times,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<astar>[Aa]\*)
  | (?P<pstar>[Pp]\*)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<cmp>>=|<=|==|!=|[<>])
  | (?P<symbol>[;,()\[\]+])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "times"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # 'ident' | 'number' | 'symbol' | 'keyword' | 'astar' | 'pstar' | 'eof'
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(f"unexpected character {source[position]!r}", position)
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower(), match.start()))
        else:
            tokens.append(_Token(kind or "symbol", text, match.start()))
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = _tokenize(source)
        self._index = 0

    def parse(self) -> EventExpression:
        expression = self._sequence()
        self._expect_kind("eof")
        return expression

    # --- grammar rules, loosest binding first -------------------------

    def _sequence(self) -> EventExpression:
        left = self._disjunction()
        while self._peek().kind == "symbol" and self._peek().text == ";":
            self._advance()
            left = Sequence(left, self._disjunction())
        return left

    def _disjunction(self) -> EventExpression:
        left = self._conjunction()
        while self._peek().kind == "keyword" and self._peek().text == "or":
            self._advance()
            left = Or(left, self._conjunction())
        return left

    def _conjunction(self) -> EventExpression:
        left = self._unary()
        while self._peek().kind == "keyword" and self._peek().text == "and":
            self._advance()
            left = And(left, self._unary())
        return left

    def _unary(self) -> EventExpression:
        token = self._peek()
        expression: EventExpression | None = None
        if token.kind == "keyword" and token.text == "not":
            expression = self._not_expression()
        elif token.kind == "keyword" and token.text == "times":
            expression = self._times_expression()
        elif token.kind == "astar":
            expression = self._triple(AperiodicStar)
        elif token.kind == "pstar":
            expression = self._periodic(PeriodicStar)
        elif token.kind == "ident" and token.text in ("A", "a"):
            if self._peek(1).text == "(":
                expression = self._triple(Aperiodic)
        elif token.kind == "ident" and token.text in ("P", "p"):
            if self._peek(1).text == "(":
                expression = self._periodic(Periodic)
        if expression is None:
            return self._postfix()
        # Operator forms accept postfix chaining too: times(1, a)[n > 0].
        return self._postfix_chain(expression)

    def _not_expression(self) -> EventExpression:
        self._advance()  # not
        self._expect_symbol("(")
        negated = self._sequence()
        self._expect_symbol(")")
        self._expect_symbol("[")
        opener = self._sequence()
        self._expect_symbol(",")
        closer = self._sequence()
        self._expect_symbol("]")
        return Not(negated=negated, opener=opener, closer=closer)

    def _times_expression(self) -> EventExpression:
        self._advance()  # times
        self._expect_symbol("(")
        count_token = self._expect_kind("number")
        self._expect_symbol(",")
        body = self._sequence()
        self._expect_symbol(")")
        return Times(count=int(count_token.text), body=body)

    def _triple(self, node_class: type) -> EventExpression:
        self._advance()  # A or A*
        self._expect_symbol("(")
        opener = self._sequence()
        self._expect_symbol(",")
        body = self._sequence()
        self._expect_symbol(",")
        closer = self._sequence()
        self._expect_symbol(")")
        return node_class(opener=opener, body=body, closer=closer)

    def _periodic(self, node_class: type) -> EventExpression:
        self._advance()  # P or P*
        self._expect_symbol("(")
        opener = self._sequence()
        self._expect_symbol(",")
        period_token = self._expect_kind("number")
        self._expect_symbol(",")
        closer = self._sequence()
        self._expect_symbol(")")
        return node_class(opener=opener, period=int(period_token.text), closer=closer)

    def _postfix(self) -> EventExpression:
        return self._postfix_chain(self._atom())

    def _postfix_chain(self, expression: EventExpression) -> EventExpression:
        while True:
            token = self._peek()
            if token.kind == "symbol" and token.text == "+":
                self._advance()
                offset = self._expect_kind("number")
                expression = Plus(expression, int(offset.text))
            elif token.kind == "symbol" and token.text == "[":
                expression = Filter(expression, self._comparisons())
            else:
                return expression

    def _comparisons(self) -> tuple[Comparison, ...]:
        """Parse ``[attr > 100, name == 'x']`` after an expression."""
        self._expect_symbol("[")
        conditions = [self._comparison()]
        while self._peek().kind == "symbol" and self._peek().text == ",":
            self._advance()
            conditions.append(self._comparison())
        self._expect_symbol("]")
        return tuple(conditions)

    def _comparison(self) -> Comparison:
        attribute = self._expect_kind("ident")
        op = self._expect_kind("cmp")
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value: int | str = int(token.text)
        elif token.kind == "string":
            self._advance()
            value = token.text[1:-1]
        elif token.kind == "ident":
            self._advance()
            value = token.text
        else:
            raise ParseError(
                f"expected a number, string or identifier after {op.text!r}, "
                f"got {token.text or 'end of input'!r}",
                token.position,
            )
        return Comparison(attribute.text, op.text, value)

    def _atom(self) -> EventExpression:
        token = self._peek()
        if token.kind == "ident":
            self._advance()
            return Primitive(token.text)
        if token.kind == "symbol" and token.text == "(":
            self._advance()
            inner = self._sequence()
            self._expect_symbol(")")
            return inner
        raise ParseError(
            f"expected an event name or '(', got {token.text or 'end of input'!r}",
            token.position,
        )

    # --- token-stream helpers ------------------------------------------

    def _peek(self, lookahead: int = 0) -> _Token:
        index = min(self._index + lookahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _expect_kind(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.text or 'end of input'!r}", token.position
            )
        return self._advance()

    def _expect_symbol(self, symbol: str) -> _Token:
        token = self._peek()
        if token.kind != "symbol" or token.text != symbol:
            raise ParseError(
                f"expected {symbol!r}, got {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()


_parse_cache: dict[str, EventExpression] = {}
_PARSE_CACHE_LIMIT = 1024


def parse_expression(source: str) -> EventExpression:
    """Parse a Snoop expression; raises :class:`ParseError` on bad input.

    Results are memoized: expressions are immutable, so re-registering the
    same text (benchmarks, repeated simulations) returns the shared AST.

    >>> parse_expression("A*(open, tick, close)").depth()
    2
    """
    cached = _parse_cache.get(source)
    if cached is not None:
        return cached
    expression = _Parser(source).parse()
    if len(_parse_cache) >= _PARSE_CACHE_LIMIT:
        _parse_cache.clear()
    _parse_cache[source] = expression
    return expression


def tokens_of(source: str) -> Iterator[str]:
    """Token texts of ``source`` — exposed for testing and tooling."""
    return (t.text for t in _tokenize(source) if t.kind != "eof")
