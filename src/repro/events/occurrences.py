"""Event occurrences and histories.

An :class:`EventOccurrence` is one instance of an event — primitive or
composite — carrying:

* the event type name,
* its distributed composite timestamp (a primitive occurrence carries a
  singleton composite stamp, per Definition 5.2 every composite stamp is
  built from primitive triples),
* the event parameters (the paper propagates "event name and event
  parameters" alongside the timestamp), and
* its *constituents* — for a composite occurrence, the primitive
  occurrences that made it happen, preserving full provenance for the
  cumulative operators (``A*``) and for rule conditions.

A :class:`History` is a finite, validated record of primitive occurrences
— the input to both the denotational semantics (the oracle) and the
operational detectors.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import SimultaneityViolationError, UnknownEventTypeError
from repro.events.types import EventClass, TypeRegistry
from repro.time.composite import CompositeTimestamp
from repro.time.timestamps import PrimitiveTimestamp

_occurrence_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class EventOccurrence:
    """One occurrence of a (primitive or composite) event.

    Instances are immutable; ``uid`` is a process-unique sequence number
    used for stable ordering and deduplication in detector state.
    """

    event_type: str
    timestamp: CompositeTimestamp
    parameters: Mapping[str, Any] = field(default_factory=dict)
    constituents: tuple["EventOccurrence", ...] = ()
    uid: int = field(default_factory=lambda: next(_occurrence_counter))

    @classmethod
    def primitive(
        cls,
        event_type: str,
        stamp: PrimitiveTimestamp,
        parameters: Mapping[str, Any] | None = None,
    ) -> "EventOccurrence":
        """Build a primitive occurrence from a single primitive stamp."""
        return cls(
            event_type=event_type,
            timestamp=CompositeTimestamp.singleton(stamp),
            parameters=dict(parameters or {}),
        )

    @property
    def is_primitive(self) -> bool:
        """Whether this occurrence has no constituents of its own."""
        return not self.constituents

    def site(self) -> str | None:
        """The site of a primitive occurrence, ``None`` for composites."""
        if len(self.timestamp) == 1 and self.is_primitive:
            (stamp,) = self.timestamp.stamps
            return stamp.site
        return None

    def primitive_leaves(self) -> tuple["EventOccurrence", ...]:
        """The primitive occurrences at the leaves of the provenance tree."""
        if self.is_primitive:
            return (self,)
        leaves: list[EventOccurrence] = []
        for constituent in self.constituents:
            leaves.extend(constituent.primitive_leaves())
        return tuple(leaves)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventOccurrence):
            return NotImplemented
        return self.uid == other.uid

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.event_type}#{self.uid} @ {self.timestamp!r}>"


class History:
    """A finite record of primitive occurrences across all sites.

    The history is kept in arrival order; per-site sub-histories are
    available via :meth:`at_site`.  :meth:`validate_simultaneity` enforces
    the Section 3.1 assumptions against a type registry.

    >>> from repro.time.timestamps import PrimitiveTimestamp
    >>> h = History()
    >>> _ = h.record("e1", PrimitiveTimestamp("s1", 5, 50))
    >>> len(h)
    1
    """

    def __init__(self, occurrences: Iterable[EventOccurrence] = ()) -> None:
        self._occurrences: list[EventOccurrence] = list(occurrences)

    def record(
        self,
        event_type: str,
        stamp: PrimitiveTimestamp,
        parameters: Mapping[str, Any] | None = None,
    ) -> EventOccurrence:
        """Append a primitive occurrence and return it."""
        occurrence = EventOccurrence.primitive(event_type, stamp, parameters)
        self._occurrences.append(occurrence)
        return occurrence

    def add(self, occurrence: EventOccurrence) -> None:
        """Append an existing occurrence."""
        self._occurrences.append(occurrence)

    def of_type(self, event_type: str) -> list[EventOccurrence]:
        """All occurrences of one event type, in arrival order."""
        return [o for o in self._occurrences if o.event_type == event_type]

    def at_site(self, site: str) -> list[EventOccurrence]:
        """All primitive occurrences raised at one site."""
        return [o for o in self._occurrences if o.site() == site]

    def types(self) -> set[str]:
        """The set of event-type names appearing in the history."""
        return {o.event_type for o in self._occurrences}

    def filtered(self, predicate: Callable[[EventOccurrence], bool]) -> "History":
        """A new history containing the occurrences matching ``predicate``."""
        return History(o for o in self._occurrences if predicate(o))

    def validate_simultaneity(self, registry: TypeRegistry) -> None:
        """Enforce the Section 3.1 simultaneity assumptions.

        Two occurrences are *simultaneous* when their primitive stamps
        are (same site, same local tick).  Raises
        :class:`SimultaneityViolationError` when two database events or
        two explicit events are simultaneous.
        """
        seen: dict[tuple[str, int, EventClass], EventOccurrence] = {}
        for occurrence in self._occurrences:
            site = occurrence.site()
            if site is None:
                continue
            try:
                event_class = registry.get(occurrence.event_type).event_class
            except UnknownEventTypeError:
                continue
            if not event_class.excludes_simultaneity:
                continue
            (stamp,) = occurrence.timestamp.stamps
            key = (site, stamp.local, event_class)
            previous = seen.get(key)
            if previous is not None:
                raise SimultaneityViolationError(
                    f"two {event_class.value} events are simultaneous at "
                    f"site {site!r}, local tick {stamp.local}: "
                    f"{previous.event_type!r} and {occurrence.event_type!r}"
                )
            seen[key] = occurrence

    def __iter__(self) -> Iterator[EventOccurrence]:
        return iter(self._occurrences)

    def __len__(self) -> int:
        return len(self._occurrences)

    def __getitem__(self, index: int) -> EventOccurrence:
        return self._occurrences[index]


__all__ = ["EventOccurrence", "History"]
