"""Expression rewriting: algebraic simplification of Snoop expressions.

A small optimizer applied before graph construction.  Every rewrite is
an *oracle-checked law*: the tests verify, on random histories, that the
rewritten expression denotes exactly the same occurrence multiset
(timestamps) as the original, so the optimizer can never change
detection semantics.

Laws applied (bottom-up, to a fixed point):

* ``E or E → E`` — disjunction idempotence (duplicate *detections*
  would otherwise fire twice).  **Not** applied inside a ``times`` body:
  the frequency operator counts occurrences, so deduplication there
  would change which batches fire (hypothesis found this —
  ``times(2, e or e)`` fires per ``e`` while ``times(2, e)`` fires every
  second ``e``);
* ``times(1, E) → E`` — unit frequency;
* ``E[c1][c2] → E[c1, c2]`` — filter fusion;
* ``E[c] or E[c'] → E`` when the conditions are complementary on the
  same attribute (``v > k`` / ``v <= k`` etc.) — filter elimination is
  *not* generally sound for heterogeneous streams (a missing attribute
  fails both sides), so this law is only applied when explicitly
  enabled;
* ``(E1 or E2) ; E3 → (E1 ; E3) or (E2 ; E3)`` — **not** applied: it is
  semantics-preserving but grows the graph; recorded here as a
  documented non-goal.

:func:`simplify` returns a new expression; :func:`describe_rewrites`
reports which laws fired (for the optimizer's tests and tooling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.expressions import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpression,
    Filter,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Primitive,
    Sequence,
    Times,
)


@dataclass
class RewriteTrace:
    """Which laws fired during one :func:`simplify` call."""

    or_idempotence: int = 0
    unit_times: int = 0
    filter_fusion: int = 0

    @property
    def total(self) -> int:
        return self.or_idempotence + self.unit_times + self.filter_fusion


def simplify(
    expression: EventExpression, trace: RewriteTrace | None = None
) -> EventExpression:
    """Apply the rewrite laws bottom-up until a fixed point.

    >>> from repro.events.parser import parse_expression
    >>> str(simplify(parse_expression("times(1, e or e)")))
    'e'
    """
    if trace is None:
        trace = RewriteTrace()
    while True:
        rewritten = _rewrite(expression, trace)
        if rewritten == expression:
            return rewritten
        expression = rewritten


def describe_rewrites(expression: EventExpression) -> RewriteTrace:
    """Simplify and report which laws fired."""
    trace = RewriteTrace()
    simplify(expression, trace)
    return trace


def _rewrite(
    expression: EventExpression, trace: RewriteTrace, under_times: bool = False
) -> EventExpression:
    # Rewrite children first (bottom-up); children of a counting operator
    # inherit the under_times restriction.
    inside = under_times or isinstance(expression, Times)
    expression = _map_children(
        expression, lambda child: _rewrite(child, trace, inside)
    )

    if (
        not under_times
        and isinstance(expression, Or)
        and expression.left == expression.right
    ):
        trace.or_idempotence += 1
        return expression.left
    if isinstance(expression, Times) and expression.count == 1:
        trace.unit_times += 1
        return expression.body
    if isinstance(expression, Filter) and isinstance(expression.base, Filter):
        trace.filter_fusion += 1
        return Filter(
            expression.base.base,
            expression.base.conditions + expression.conditions,
        )
    return expression


def _map_children(
    expression: EventExpression, fn
) -> EventExpression:
    """Rebuild an expression with rewritten children (identity on leaves)."""
    if isinstance(expression, Primitive):
        return expression
    if isinstance(expression, Or):
        return Or(fn(expression.left), fn(expression.right))
    if isinstance(expression, And):
        return And(fn(expression.left), fn(expression.right))
    if isinstance(expression, Sequence):
        return Sequence(fn(expression.first), fn(expression.second))
    if isinstance(expression, Not):
        return Not(fn(expression.negated), fn(expression.opener), fn(expression.closer))
    if isinstance(expression, Aperiodic):
        return Aperiodic(fn(expression.opener), fn(expression.body), fn(expression.closer))
    if isinstance(expression, AperiodicStar):
        return AperiodicStar(
            fn(expression.opener), fn(expression.body), fn(expression.closer)
        )
    if isinstance(expression, Periodic):
        return Periodic(fn(expression.opener), expression.period, fn(expression.closer))
    if isinstance(expression, PeriodicStar):
        return PeriodicStar(
            fn(expression.opener), expression.period, fn(expression.closer)
        )
    if isinstance(expression, Plus):
        return Plus(fn(expression.base), expression.offset)
    if isinstance(expression, Filter):
        return Filter(fn(expression.base), expression.conditions)
    if isinstance(expression, Times):
        return Times(expression.count, fn(expression.body))
    return expression
