"""The candidate composite orderings analysed in Section 5.1.

The paper derives its composite happen-before by elimination.  Writing
``T1 ≺ T2`` for a candidate strict ordering over composite timestamps,
Section 5.1 requires:

1. *witness*: ``T1 ≺ T2`` implies some primitive pair ``t1 < t2``;
2. *well-defined*: ``≺`` is irreflexive and transitive;
3. *least restricted*: no valid ordering strictly contains it.

The candidates, all implemented here so the benchmarks can compare them:

=========  =============================================  =====================
name       definition                                     verdict in the paper
=========  =============================================  =====================
``lt_p``   ``∀t2 ∈ T2 ∃t1 ∈ T1: t1 < t2``                 chosen — valid, least restricted
``lt_g``   ``∀t1 ∈ T1 ∃t2 ∈ T2: t1 < t2``                 the dual — equally valid
``lt_p1``  ``∃t1 ∃t2: t1 < t2``                           **invalid** — not transitive
``lt_p2``  ``∀t1 ∀t2: t1 < t2``                           valid but more restricted
``lt_p3``  ``min-global t1 of T1 < every t2 of T2``       valid but more restricted
=========  =============================================  =====================

Each strategy is a plain predicate ``(CompositeTimestamp,
CompositeTimestamp) -> bool``; :data:`ORDERINGS` is a registry mapping the
name to an :class:`OrderingSpec` carrying the paper's verdict, which the
validity/restrictiveness benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.time.composite import (
    CompositeTimestamp,
    composite_dominated_by,
    composite_happens_before,
)
from repro.time.timestamps import happens_before

OrderingPredicate = Callable[[CompositeTimestamp, CompositeTimestamp], bool]


def lt_p(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The chosen ordering ``<_p``: ``∀t2 ∃t1: t1 < t2`` (Definition 5.3.2)."""
    return composite_happens_before(t1, t2)


def lt_g(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The dual ordering ``<_g``: ``∀t1 ∃t2: t1 < t2``.

    Section 5.1 shows ``(<_p, >_g)`` and ``(<_g, >_p)`` are the two dual
    pairs of least-restricted valid orderings; the paper picks ``<_p``.
    """
    return composite_dominated_by(t1, t2)


def lt_p1(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The naive ``∃∃`` ordering ``<_p1`` — **not transitive** (invalid).

    Section 5.1: because the witnessing middle elements may differ,
    ``T1 <_p1 T2`` and ``T2 <_p1 T3`` do not imply ``T1 <_p1 T3``; the
    validity benchmark exhibits concrete violations.
    """
    return any(happens_before(a, b) for a in t1.stamps for b in t2.stamps)


def lt_p2(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The ``∀∀`` ordering ``<_p2`` — valid but more restricted than ``<_p``."""
    return all(happens_before(a, b) for a in t1.stamps for b in t2.stamps)


def lt_p3(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The min-based ordering ``<_p3`` — valid but more restricted.

    Let ``min_t1`` be the triple of ``T1`` with minimum global time (ties
    broken arbitrarily but deterministically); ``T1 <_p3 T2`` iff
    ``min_t1 < t2`` for every ``t2`` of ``T2``.
    """
    min_t1 = min(t1.stamps, key=lambda t: (t.global_time, t.local, t.site))
    return all(happens_before(min_t1, b) for b in t2.stamps)


@dataclass(frozen=True, slots=True)
class OrderingSpec:
    """Metadata for a candidate ordering, as judged by the paper."""

    name: str
    predicate: OrderingPredicate
    is_valid_partial_order: bool
    is_least_restricted: bool
    description: str


ORDERINGS: dict[str, OrderingSpec] = {
    spec.name: spec
    for spec in (
        OrderingSpec(
            name="lt_p",
            predicate=lt_p,
            is_valid_partial_order=True,
            is_least_restricted=True,
            description="forall t2 exists t1: t1 < t2 (the paper's choice)",
        ),
        OrderingSpec(
            name="lt_g",
            predicate=lt_g,
            is_valid_partial_order=True,
            is_least_restricted=True,
            description="forall t1 exists t2: t1 < t2 (the dual)",
        ),
        OrderingSpec(
            name="lt_p1",
            predicate=lt_p1,
            is_valid_partial_order=False,
            is_least_restricted=False,
            description="exists-exists (invalid: not transitive)",
        ),
        OrderingSpec(
            name="lt_p2",
            predicate=lt_p2,
            is_valid_partial_order=True,
            is_least_restricted=False,
            description="forall-forall (valid, more restricted)",
        ),
        OrderingSpec(
            name="lt_p3",
            predicate=lt_p3,
            is_valid_partial_order=True,
            is_least_restricted=False,
            description="min-global of T1 before all of T2 (valid, more restricted)",
        ),
    )
}


def lt_p1_counterexample() -> tuple[
    CompositeTimestamp, CompositeTimestamp, CompositeTimestamp
]:
    """A fixed transitivity violation of ``<_p1`` on valid max-sets.

    ``a = {(s1,6,65)}``, ``b = {(s2,8,80), (s3,7,70)}``, ``c = {(s3,7,75)}``:
    ``a <_p1 b`` via ``(s1,6,65) < (s2,8,80)`` and ``b <_p1 c`` via the
    same-site pair ``(s3,7,70) < (s3,7,75)``, yet ``a`` and ``c`` are
    concurrent — the witnessing middle elements differ, which is exactly
    the paper's argument for rejecting the ``∃∃`` definition.
    """
    a = CompositeTimestamp.from_triples([("s1", 6, 65)])
    b = CompositeTimestamp.from_triples([("s2", 8, 80), ("s3", 7, 70)])
    c = CompositeTimestamp.from_triples([("s3", 7, 75)])
    return a, b, c


def paper_example_pairs() -> list[tuple[str, CompositeTimestamp, CompositeTimestamp]]:
    """The two Section 5.1 example pairs separating ``<_p`` from ``<_p2``/``<_p3``.

    Returns ``(label, T1, T2)`` triples where ``T1 <_p T2`` holds but the
    named more-restricted ordering rejects the pair.
    """
    pair_p2 = (
        "lt_p2",
        CompositeTimestamp.from_triples([("site1", 8, 80), ("site2", 7, 70)]),
        CompositeTimestamp.from_triples([("site3", 9, 90)]),
    )
    pair_p3 = (
        "lt_p3",
        CompositeTimestamp.from_triples([("site1", 8, 80), ("site2", 7, 70)]),
        CompositeTimestamp.from_triples([("site1", 8, 81), ("site2", 7, 71)]),
    )
    return [pair_p2, pair_p3]
