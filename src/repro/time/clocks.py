"""Reference clock, drifting local clocks, and a synchronized ensemble.

Section 4.1 of the paper assumes the Kopetz approximated-global-time model:

* a unique reference clock ``z`` in perfect agreement with UTC;
* one physical clock per site, each with its own rate (drift) and offset;
* the clocks are *synchronized*: the maximum offset between corresponding
  ticks of any two local clocks, observed by the reference clock, is
  bounded by the precision ``Π``;
* a global granularity ``g_g > Π`` is chosen, and global time is the local
  clock reading truncated to ``g_g`` (Definition 4.3).

The classes here simulate exactly that structure.  :class:`LocalClock`
converts *true* (reference) time to local tick counts given a drift rate
and a bounded offset; :class:`ClockEnsemble` builds a family of such
clocks whose pairwise offset respects ``Π`` and stamps events.

All arithmetic is exact (:class:`fractions.Fraction`), so the simulation is
deterministic and reproducible across platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping

from repro.errors import GranularityError, UnknownSiteError
from repro.time.ticks import TimeModel
from repro.time.timestamps import PrimitiveTimestamp


@dataclass(frozen=True, slots=True)
class ReferenceClock:
    """The unique reference clock ``z``, in perfect agreement with UTC.

    It exists mostly to *observe* local clocks: the simulator uses true
    time directly, and the reference clock converts it to reference ticks
    of granularity ``g_z``.
    """

    granularity_seconds: Fraction = Fraction(1, 1000)

    def __post_init__(self) -> None:
        if self.granularity_seconds <= 0:
            raise GranularityError(
                f"reference granularity must be positive, got {self.granularity_seconds}"
            )

    def ticks_at(self, true_seconds: int | float | Fraction) -> int:
        """Reference tick count at a true-time instant."""
        return int(Fraction(true_seconds) / self.granularity_seconds)


@dataclass(frozen=True, slots=True)
class LocalClock:
    """A site's physical clock with drift and bounded offset.

    The clock's reading at true time ``t`` is
    ``(1 + drift) * t + offset`` seconds, discretized to local ticks of the
    model's local granularity.  ``offset`` is the clock's deviation from
    the reference at ``t = 0``; over a bounded simulation horizon the
    *combined* deviation (offset plus accumulated drift) must stay within
    the synchronization precision — :class:`ClockEnsemble` enforces that.

    >>> from repro.time.ticks import TimeModel
    >>> clock = LocalClock("site-a", TimeModel.example_5_1(), offset=Fraction(1, 50))
    >>> clock.local_ticks(Fraction(915482, 1))  # 915482 s of true time
    91548202
    """

    site: str
    model: TimeModel
    offset: Fraction = Fraction(0)
    drift: Fraction = Fraction(0)
    # Cached integer coefficients: the reading in local ticks is the
    # affine map ``(rn/rd) * t + (on/od)``, folding the drift factor and
    # the division by the local granularity into one integer kernel.
    _rate_n: int = field(init=False, repr=False, compare=False)
    _rate_d: int = field(init=False, repr=False, compare=False)
    _off_n: int = field(init=False, repr=False, compare=False)
    _off_d: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        g = self.model.local.seconds
        rate = (1 + self.drift) / g
        off = self.offset / g
        object.__setattr__(self, "_rate_n", rate.numerator)
        object.__setattr__(self, "_rate_d", rate.denominator)
        object.__setattr__(self, "_off_n", off.numerator)
        object.__setattr__(self, "_off_d", off.denominator)

    def reading(self, true_seconds: int | float | Fraction) -> Fraction:
        """The clock's continuous reading (in seconds) at a true instant."""
        t = Fraction(true_seconds)
        return (1 + self.drift) * t + self.offset

    def local_ticks(self, true_seconds: int | float | Fraction) -> int:
        """Local tick count at a true instant (floor to local granularity).

        Pure integer arithmetic: ``trunc((rn*tn*od + on*rd*td) / (rd*td*od))``
        with truncation toward zero, matching ``int(Fraction)``.
        """
        if type(true_seconds) is not Fraction:
            true_seconds = Fraction(true_seconds)
        tn = true_seconds.numerator
        td = true_seconds.denominator
        numerator = self._rate_n * tn * self._off_d + self._off_n * self._rate_d * td
        denominator = self._rate_d * td * self._off_d
        if numerator >= 0:
            return numerator // denominator
        return -((-numerator) // denominator)

    def global_time(self, true_seconds: int | float | Fraction) -> int:
        """Global granules at a true instant (``TRUNC`` of the local ticks)."""
        return self.model.global_time(self.local_ticks(true_seconds))

    def stamp(self, true_seconds: int | float | Fraction) -> PrimitiveTimestamp:
        """The primitive timestamp of an event occurring now at this site."""
        local = self.local_ticks(true_seconds)
        return PrimitiveTimestamp(
            site=self.site,
            global_time=self.model.global_time(local),
            local=local,
        )

    def deviation_at(self, true_seconds: int | float | Fraction) -> Fraction:
        """Absolute deviation (seconds) from the reference at a true instant."""
        t = Fraction(true_seconds)
        return abs(self.reading(t) - t)


@dataclass
class ClockEnsemble:
    """A family of synchronized local clocks respecting precision ``Π``.

    The ensemble validates — at construction and on demand via
    :meth:`validate_precision` — that over the stated simulation ``horizon``
    (seconds of true time) every pair of clocks stays within ``Π`` of each
    other, which is the premise the ``2g_g``-restricted order relies on.

    Use :meth:`random` to generate an ensemble with offsets and drifts
    drawn uniformly inside the precision budget.
    """

    model: TimeModel
    clocks: dict[str, LocalClock] = field(default_factory=dict)
    horizon: Fraction = Fraction(1_000_000)

    def __post_init__(self) -> None:
        self.validate_precision()

    @classmethod
    def random(
        cls,
        model: TimeModel,
        sites: Iterable[str],
        rng: random.Random,
        horizon: int | Fraction = Fraction(1_000_000),
        drift_fraction: Fraction = Fraction(1, 10),
    ) -> "ClockEnsemble":
        """Generate clocks with offsets/drifts inside the precision budget.

        Each clock's *total* deviation over ``horizon`` is kept below
        ``Π/2`` so that any *pair* deviates by less than ``Π``.  A fraction
        ``drift_fraction`` of the per-clock budget is spent on drift, the
        rest on the initial offset.

        The ensemble is a pure function of the model, sites, and the RNG
        draws, so generated clocks (immutable) and their precision proof
        are memoized — re-seeded simulations skip the rational arithmetic.
        """
        horizon = Fraction(horizon)
        site_list = list(sites)
        draws = tuple(
            (rng.randint(-1000, 1000), rng.randint(-1000, 1000))
            for _ in site_list
        )
        key = (model, tuple(site_list), horizon, drift_fraction, draws)
        cached = _random_ensemble_cache.get(key)
        if cached is not None:
            return cls._prevalidated(model, dict(cached), horizon)
        budget = model.precision / 2
        drift_budget = budget * drift_fraction
        offset_budget = budget - drift_budget
        max_drift = drift_budget / horizon if horizon else Fraction(0)
        clocks: dict[str, LocalClock] = {}
        for site, (offset_draw, drift_draw) in zip(site_list, draws):
            offset = offset_budget * Fraction(offset_draw, 1000)
            drift = max_drift * Fraction(drift_draw, 1000)
            clocks[site] = LocalClock(site=site, model=model, offset=offset, drift=drift)
        ensemble = cls(model=model, clocks=clocks, horizon=horizon)
        if len(_random_ensemble_cache) >= _ENSEMBLE_CACHE_LIMIT:
            _random_ensemble_cache.clear()
        _random_ensemble_cache[key] = dict(clocks)
        return ensemble

    @classmethod
    def _prevalidated(
        cls,
        model: TimeModel,
        clocks: dict[str, LocalClock],
        horizon: Fraction,
    ) -> "ClockEnsemble":
        """Build an ensemble whose precision proof is already known."""
        ensemble = cls.__new__(cls)
        ensemble.model = model
        ensemble.clocks = clocks
        ensemble.horizon = horizon
        return ensemble

    @classmethod
    def perfect(cls, model: TimeModel, sites: Iterable[str]) -> "ClockEnsemble":
        """All clocks perfectly synchronized (zero offset and drift)."""
        clocks = {site: LocalClock(site=site, model=model) for site in sites}
        return cls(model=model, clocks=clocks)

    @property
    def sites(self) -> list[str]:
        """Site identifiers in insertion order."""
        return list(self.clocks)

    def clock(self, site: str) -> LocalClock:
        """The clock of ``site``; raises :class:`UnknownSiteError` if absent."""
        try:
            return self.clocks[site]
        except KeyError:
            raise UnknownSiteError(f"no clock registered for site {site!r}") from None

    def add_clock(self, clock: LocalClock) -> None:
        """Register a clock, re-validating the ensemble precision."""
        self.clocks[clock.site] = clock
        self.validate_precision()

    def stamp(self, site: str, true_seconds: int | float | Fraction) -> PrimitiveTimestamp:
        """Timestamp an event at ``site`` occurring at a true instant."""
        return self.clock(site).stamp(true_seconds)

    def max_pairwise_deviation(self) -> Fraction:
        """Worst pairwise clock deviation over the horizon (seconds).

        Deviations are affine in true time, so the extremes occur at the
        endpoints ``t = 0`` and ``t = horizon``; checking both is exact.
        """
        worst = Fraction(0)
        # reading(0) is just the offset, so only the horizon endpoint needs
        # the affine evaluation.
        readings_start = {s: c.offset for s, c in self.clocks.items()}
        readings_end = {s: c.reading(self.horizon) for s, c in self.clocks.items()}
        names = list(self.clocks)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                worst = max(
                    worst,
                    abs(readings_start[a] - readings_start[b]),
                    abs(readings_end[a] - readings_end[b]),
                )
        return worst

    def validate_precision(self) -> None:
        """Raise :class:`GranularityError` if any clock pair exceeds ``Π``."""
        worst = self.max_pairwise_deviation()
        if worst >= self.model.precision and len(self.clocks) > 1:
            raise GranularityError(
                f"clock ensemble violates precision: worst pairwise deviation "
                f"{worst} >= Pi={self.model.precision}"
            )

    def as_mapping(self) -> Mapping[str, LocalClock]:
        """Read-only view of the clocks, keyed by site."""
        return dict(self.clocks)


# Memo for :meth:`ClockEnsemble.random`: (model, sites, horizon,
# drift_fraction, draws) -> generated clocks.  LocalClock is frozen, so
# cached clocks are shared; the dict itself is copied per ensemble.
_random_ensemble_cache: dict[object, dict[str, LocalClock]] = {}
_ENSEMBLE_CACHE_LIMIT = 256
