"""Logical-clock substrates: Lamport and vector clocks (ablation).

The paper grounds distributed event ordering in *synchronized physical
clocks* (approximated global time).  The classic alternative — logical
clocks — orders events by *causality*: an event precedes another iff a
message chain connects them.  This module implements both substrates so
the benchmarks can compare them against the ``2g_g``-restricted order on
the same workloads:

* :class:`LamportClock` — scalar clocks; consistent with causality but
  unable to *detect* concurrency (any two stamps compare).
* :class:`VectorClock` / :class:`VectorStamp` — vector clocks; order
  exactly the causally-related pairs and report everything else
  concurrent.

The trade the LOGIC benchmark measures: vector clocks never mis-order
and never falsely order independent events, but they also *cannot* order
causally-independent events that real time separates by minutes — the
case the paper's physical-time semantics is designed for (a stock tick
in New York an hour before one in London is "concurrent" to a vector
clock unless some message connects them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TimestampError


@dataclass(frozen=True, slots=True)
class LamportStamp:
    """A scalar logical timestamp ``(counter, site)``.

    The site id breaks ties, making the order total — which is exactly
    why Lamport stamps cannot witness concurrency.
    """

    counter: int
    site: str

    def __lt__(self, other: "LamportStamp") -> bool:
        return (self.counter, self.site) < (other.counter, other.site)


class LamportClock:
    """A per-site Lamport clock.

    ``tick()`` stamps a local event; ``send()`` returns the counter to
    piggyback on a message; ``receive(counter)`` merges an incoming
    message's counter.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        self._counter = 0

    def tick(self) -> LamportStamp:
        """Advance for a local event and return its stamp."""
        self._counter += 1
        return LamportStamp(self._counter, self.site)

    def send(self) -> int:
        """Advance for a send; returns the counter to attach."""
        self._counter += 1
        return self._counter

    def receive(self, message_counter: int) -> LamportStamp:
        """Merge an incoming counter; returns the receive event's stamp."""
        self._counter = max(self._counter, message_counter) + 1
        return LamportStamp(self._counter, self.site)


@dataclass(frozen=True)
class VectorStamp:
    """A vector timestamp: site → component.

    ``a < b`` iff every component of ``a`` is ≤ the matching component
    of ``b`` and some component is strictly smaller (missing components
    read as zero); unordered stamps are *concurrent*.
    """

    components: Mapping[str, int]
    site: str

    def component(self, site: str) -> int:
        """The component for ``site`` (0 when absent)."""
        return self.components.get(site, 0)

    def __lt__(self, other: "VectorStamp") -> bool:
        sites = set(self.components) | set(other.components)
        le = all(self.component(s) <= other.component(s) for s in sites)
        lt = any(self.component(s) < other.component(s) for s in sites)
        return le and lt

    def concurrent(self, other: "VectorStamp") -> bool:
        """Neither stamp causally precedes the other."""
        return not self < other and not other < self

    def merge(self, other: "VectorStamp") -> dict[str, int]:
        """Component-wise maximum (used on message receipt)."""
        sites = set(self.components) | set(other.components)
        return {s: max(self.component(s), other.component(s)) for s in sites}


class VectorClock:
    """A per-site vector clock."""

    def __init__(self, site: str) -> None:
        if not site:
            raise TimestampError("vector clock needs a site name")
        self.site = site
        self._components: dict[str, int] = {site: 0}

    def tick(self) -> VectorStamp:
        """Advance for a local event and return its stamp."""
        self._components[self.site] += 1
        return VectorStamp(dict(self._components), self.site)

    def send(self) -> VectorStamp:
        """Advance for a send; the returned stamp travels on the message."""
        return self.tick()

    def receive(self, message: VectorStamp) -> VectorStamp:
        """Merge an incoming stamp; returns the receive event's stamp."""
        for site, value in message.components.items():
            if site != self.site:
                current = self._components.get(site, 0)
                self._components[site] = max(current, value)
        return self.tick()

    def snapshot(self) -> VectorStamp:
        """The clock's current reading without advancing."""
        return VectorStamp(dict(self._components), self.site)


@dataclass
class CausalHistorySimulator:
    """Drives Lamport and vector clocks over a synthetic site history.

    Used by the LOGIC benchmark: events happen at true times on sites;
    occasionally a site messages another (establishing causality).  The
    simulator records, for each event, the true time and all three
    stamps so ordering decisiveness can be compared.
    """

    sites: list[str]
    lamport: dict[str, LamportClock] = field(init=False)
    vector: dict[str, VectorClock] = field(init=False)

    def __post_init__(self) -> None:
        self.lamport = {s: LamportClock(s) for s in self.sites}
        self.vector = {s: VectorClock(s) for s in self.sites}

    def local_event(self, site: str) -> tuple[LamportStamp, VectorStamp]:
        """A local event at ``site``; returns both logical stamps."""
        return self.lamport[site].tick(), self.vector[site].tick()

    def message(self, src: str, dst: str) -> tuple[LamportStamp, VectorStamp]:
        """A message ``src → dst``; returns the *receive* event's stamps."""
        lamport_counter = self.lamport[src].send()
        vector_stamp = self.vector[src].send()
        return (
            self.lamport[dst].receive(lamport_counter),
            self.vector[dst].receive(vector_stamp),
        )
