"""Granularity arithmetic and the ``TRUNC`` family (Definition 4.3).

The paper's time model works with two granularities:

* the *local* granularity ``g`` — the duration of one tick of a site's
  physical clock (e.g. ``1/100 s`` in the Section 5.1 example), and
* the *global* granularity ``g_g`` — the coarser unit used to compare
  events across sites (``1/10 s`` in the example), chosen strictly greater
  than the clock-synchronization precision ``Π``.

A local tick count is converted to global time by ``TRUNC_{g_g}``
(Definition 4.3).  The paper allows ``TRUNC`` to be *floor*, *ceiling* or
*round* "as long as it is consistent throughout the system" and then fixes
it to integer division (floor); :class:`TruncMode` exposes all three, with
:attr:`TruncMode.FLOOR` as the default used everywhere else in the library.

:class:`TimeModel` bundles the granularities and precision into a single
validated object that the clock simulator (:mod:`repro.time.clocks`) and
the workload generators consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import GranularityError


class TruncMode(enum.Enum):
    """How local ticks are truncated to global granules (Definition 4.3)."""

    FLOOR = "floor"
    CEIL = "ceil"
    ROUND = "round"


def truncate(local_ticks: int, ratio: int, mode: TruncMode = TruncMode.FLOOR) -> int:
    """Convert a local tick count to global granules: ``TRUNC_{g_g}``.

    ``ratio`` is the number of local ticks per global granule
    (``g_g / g``), which the model requires to be a positive integer.

    >>> truncate(91548276, 10)
    9154827
    >>> truncate(15, 10, TruncMode.CEIL)
    2
    >>> truncate(15, 10, TruncMode.ROUND)
    2
    """
    if ratio <= 0:
        raise GranularityError(f"tick ratio must be positive, got {ratio}")
    if mode is TruncMode.FLOOR:
        return local_ticks // ratio
    if mode is TruncMode.CEIL:
        return -((-local_ticks) // ratio)
    # ROUND: half-up, consistent for negative ticks as well.
    return (local_ticks + ratio // 2) // ratio


@dataclass(frozen=True, slots=True)
class Granularity:
    """A clock granularity expressed as an exact fraction of a second.

    Exact rational arithmetic avoids the floating-point drift that would
    otherwise corrupt tick/granule conversions in long simulations.

    >>> Granularity.from_string("1/100")
    Granularity(seconds=Fraction(1, 100))
    """

    seconds: Fraction

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise GranularityError(f"granularity must be positive, got {self.seconds}")

    @classmethod
    def from_string(cls, text: str) -> "Granularity":
        """Parse ``"1/100"`` or ``"0.01"`` into a granularity."""
        return cls(Fraction(text))

    @classmethod
    def of_seconds(cls, value: int | float | str | Fraction) -> "Granularity":
        """Build a granularity from any numeric spelling of seconds."""
        return cls(Fraction(value))

    def ticks_in(self, duration_seconds: int | float | Fraction) -> int:
        """Number of whole ticks of this granularity in ``duration_seconds``."""
        return int(Fraction(duration_seconds) / self.seconds)

    def ratio_to(self, finer: "Granularity") -> int:
        """Ticks of ``finer`` per tick of ``self``; must divide evenly.

        >>> Granularity.from_string("1/10").ratio_to(Granularity.from_string("1/100"))
        10
        """
        quotient = self.seconds / finer.seconds
        if quotient.denominator != 1 or quotient < 1:
            raise GranularityError(
                f"global granularity {self.seconds} is not an integer multiple "
                f"of local granularity {finer.seconds}"
            )
        return int(quotient)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.seconds}s"


@dataclass(frozen=True, slots=True)
class TimeModel:
    """The paper's distributed time model, validated at construction.

    Parameters
    ----------
    local:
        Granularity of each site's physical clock (``g``).
    global_:
        Global granularity used for cross-site comparison (``g_g``).
    precision:
        Clock synchronization precision ``Π`` — the maximum offset between
        corresponding ticks of any two local clocks, as observed by the
        reference clock.  The model requires ``g_g > Π`` so that two
        simultaneous events receive global times at most one granule apart.
    trunc:
        The ``TRUNC`` mode used throughout the system.

    >>> model = TimeModel.from_strings("1/100", "1/10", "1/20")
    >>> model.ratio
    10
    >>> model.global_time(91548276)
    9154827
    """

    local: Granularity
    global_: Granularity
    precision: Fraction
    trunc: TruncMode = TruncMode.FLOOR
    _ratio: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.precision < 0:
            raise GranularityError(f"precision must be non-negative, got {self.precision}")
        if self.global_.seconds <= self.precision:
            raise GranularityError(
                f"global granularity g_g={self.global_.seconds} must exceed "
                f"precision Pi={self.precision} (paper requires g_g > Pi)"
            )
        if self.global_.seconds < self.local.seconds:
            raise GranularityError(
                f"global granularity {self.global_.seconds} must be at least "
                f"the local granularity {self.local.seconds}"
            )
        # Validate divisibility eagerly so misconfiguration fails at setup;
        # the ratio is cached because stamping hits it on every event.
        object.__setattr__(self, "_ratio", self.global_.ratio_to(self.local))

    @classmethod
    def from_strings(
        cls,
        local: str,
        global_: str,
        precision: str,
        trunc: TruncMode = TruncMode.FLOOR,
    ) -> "TimeModel":
        """Build a model from fraction strings, e.g. ``("1/100", "1/10", "1/20")``."""
        return cls(
            local=Granularity.from_string(local),
            global_=Granularity.from_string(global_),
            precision=Fraction(precision),
            trunc=trunc,
        )

    @classmethod
    def example_5_1(cls) -> "TimeModel":
        """The exact model of the paper's Section 5.1 worked example.

        Local clocks tick at ``g = 1/100 s``, the reference clock at
        ``g_z = 1/1000 s``, clocks are synchronized with ``Π < 1/10 s``
        and the global granularity is ``g_g = 1/10 s``.

        The instance is immutable and shared across calls.
        """
        global _EXAMPLE_5_1
        if _EXAMPLE_5_1 is None:
            _EXAMPLE_5_1 = cls.from_strings("1/100", "1/10", "99/1000")
        return _EXAMPLE_5_1

    @property
    def ratio(self) -> int:
        """Local ticks per global granule (``g_g / g``)."""
        return self._ratio

    def global_time(self, local_ticks: int) -> int:
        """``TRUNC_{g_g}`` of a local tick count (Definition 4.3)."""
        if self.trunc is TruncMode.FLOOR:
            return local_ticks // self._ratio
        return truncate(local_ticks, self._ratio, self.trunc)

    def local_ticks_of_seconds(self, seconds: int | float | Fraction) -> int:
        """Whole local ticks elapsed after ``seconds`` of true time."""
        return self.local.ticks_in(seconds)


_EXAMPLE_5_1: TimeModel | None = None
