"""Distributed primitive timestamps and their temporal relations.

Implements Definitions 4.6-4.8 of the paper:

* a **primitive timestamp** is a triple ``(site, global, local)`` where
  ``local`` is the tick count of the site's physical clock and ``global``
  is ``TRUNC_{g_g}(local)`` expressed in whole global granules;
* **happen-before** ``<`` (Definition 4.7.1): same-site stamps compare by
  local ticks; cross-site stamps compare only when the global times differ
  by *more than one granule* — the ``2g_g``-restricted order;
* **simultaneous** ``=`` (4.7.2): same site and same local tick;
* **concurrent** ``~`` (4.7.3): neither happens before the other;
* **weakened-less-than-or-equal** ``⪯`` (Definition 4.8): ``<`` or ``~``.

Because global times are stored in whole granules, the paper's
``g(e1) < g(e2) - 1g_g`` becomes the integer test
``global1 < global2 - 1`` — i.e. the globals differ by at least two
granules.  No granularity parameter is needed at comparison time; it is
baked in when the stamp is created (see :mod:`repro.time.clocks`).

The corrected reading of Definition 4.7.1 is used: the paper's text says
``site ≠ site ∧ local < local`` for the first disjunct, but Definition 4.4
(from which 4.7 is derived) makes clear it must be **same site**.
"""

from __future__ import annotations

import enum

from repro.errors import TimestampError
from repro.time.kernels import pack_key, relation_code, site_id


class PrimitiveTimestamp:
    """A distributed primitive timestamp ``(site, global, local)``.

    ``global_time`` is in whole global granules (``g_g`` units) and
    ``local`` in local clock ticks.  Instances are immutable and hashable
    so they can populate the frozen sets backing composite timestamps.
    Construction precomputes the fast-path fields of
    :mod:`repro.time.kernels`: the interned site id, the packed integer
    granule key, and the hash.

    Comparison operators implement the paper's relations: ``<`` is the
    ``2g_g``-restricted happen-before, ``==`` is structural equality (which
    for stamps produced by one clock coincides with the paper's
    *simultaneous*), and ``<=`` is the weakened ``⪯``.

    >>> a = PrimitiveTimestamp("k", 9154827, 91548276)
    >>> b = PrimitiveTimestamp("k", 9154827, 91548277)
    >>> a < b
    True
    >>> c = PrimitiveTimestamp("m", 9154827, 91548277)
    >>> a < c, c < a, a.concurrent(c)
    (False, False, True)
    """

    __slots__ = ("site", "global_time", "local", "_sid", "_key", "_hash")

    site: str
    global_time: int
    local: int

    def __init__(self, site: str, global_time: int, local: int) -> None:
        if local < 0:
            raise TimestampError(
                f"local tick count must be non-negative, got {local}"
            )
        if global_time < 0:
            raise TimestampError(
                f"global time must be non-negative, got {global_time}"
            )
        set_field = object.__setattr__
        set_field(self, "site", site)
        set_field(self, "global_time", global_time)
        set_field(self, "local", local)
        sid = site_id(site)
        set_field(self, "_sid", sid)
        set_field(self, "_key", pack_key(sid, global_time, local))
        set_field(self, "_hash", hash((site, global_time, local)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"PrimitiveTimestamp is immutable; cannot assign {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"PrimitiveTimestamp is immutable; cannot delete {name!r}"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PrimitiveTimestamp):
            return self._key == other._key and self.site == other.site
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, PrimitiveTimestamp):
            return self._key != other._key or self.site != other.site
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"PrimitiveTimestamp(site={self.site!r}, "
            f"global_time={self.global_time!r}, local={self.local!r})"
        )

    def __reduce__(self):
        return (PrimitiveTimestamp, (self.site, self.global_time, self.local))

    def __lt__(self, other: "PrimitiveTimestamp") -> bool:
        return relation_code(self, other) < 0

    def __gt__(self, other: "PrimitiveTimestamp") -> bool:
        return relation_code(self, other) > 0

    def __le__(self, other: "PrimitiveTimestamp") -> bool:
        return weak_leq(self, other)

    def __ge__(self, other: "PrimitiveTimestamp") -> bool:
        return weak_leq(other, self)

    def simultaneous(self, other: "PrimitiveTimestamp") -> bool:
        """Definition 4.7.2 — same site and same local tick."""
        return simultaneous(self, other)

    def concurrent(self, other: "PrimitiveTimestamp") -> bool:
        """Definition 4.7.3 — neither stamp happens before the other."""
        return concurrent(self, other)

    def relation(self, other: "PrimitiveTimestamp") -> "Relation":
        """The exhaustive relation between two stamps (see :class:`Relation`)."""
        return relation(self, other)

    def as_triple(self) -> tuple[str, int, int]:
        """The ``(site, global, local)`` triple as written in the paper."""
        return (self.site, self.global_time, self.local)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.site}, {self.global_time}, {self.local})"


class Relation(enum.Enum):
    """Exhaustive primitive-timestamp relation (Proposition 4.2.3).

    For any two stamps exactly one of *before*, *after*, *concurrent*
    holds, except that *simultaneous* — the same-site special case of
    concurrency (Proposition 4.2.5) — is reported separately because
    several proofs in the paper treat it differently (e.g. 4.2.6).
    """

    BEFORE = "before"
    AFTER = "after"
    SIMULTANEOUS = "simultaneous"
    CONCURRENT = "concurrent"

    @property
    def is_concurrent(self) -> bool:
        """Whether the relation satisfies the paper's ``~`` (4.7.3)."""
        return self in (Relation.CONCURRENT, Relation.SIMULTANEOUS)


def happens_before(a: PrimitiveTimestamp, b: PrimitiveTimestamp) -> bool:
    """The ``2g_g``-restricted happen-before ``<`` (Definition 4.7.1).

    Same site: compare local ticks.  Different sites: require the global
    times to differ by more than one granule (``global_a < global_b - 1``).
    """
    return relation_code(a, b) < 0


def simultaneous(a: PrimitiveTimestamp, b: PrimitiveTimestamp) -> bool:
    """Simultaneity ``=`` (Definition 4.7.2): same site, same local tick."""
    return a._sid == b._sid and a.local == b.local


def concurrent(a: PrimitiveTimestamp, b: PrimitiveTimestamp) -> bool:
    """Concurrency ``~`` (Definition 4.7.3): unordered either way.

    Not transitive (Proposition 4.2.6's counterexample), hence not an
    equivalence relation; simultaneity is its same-site special case.
    """
    return relation_code(a, b) == 0


def weak_leq(a: PrimitiveTimestamp, b: PrimitiveTimestamp) -> bool:
    """The weakened less-than-or-equal ``⪯`` (Definition 4.8).

    ``a ⪯ b`` iff ``a < b`` or ``a ~ b``; by trichotomy
    (Proposition 4.2.3) that is exactly ``not (b < a)``.  Reflexive and
    total (Proposition 4.2.4) but *not* transitive, so not a partial
    order.
    """
    return relation_code(a, b) <= 0


def relation(a: PrimitiveTimestamp, b: PrimitiveTimestamp) -> Relation:
    """Classify the pair into exactly one :class:`Relation` member."""
    code = relation_code(a, b)
    if code < 0:
        return Relation.BEFORE
    if code > 0:
        return Relation.AFTER
    if a._sid == b._sid and a.local == b.local:
        return Relation.SIMULTANEOUS
    return Relation.CONCURRENT
