"""Figure 2: the site × global-time grid classification of timestamps.

Section 5.1 visualizes composite-timestamp relations on a two-dimensional
grid — X axis global time (with local time embedded), Y axis the sites.
For a reference composite stamp ``T(e)`` the grid splits into regions
bounded by four "lines":

* before Line1 — probes with ``T(e1) < T(e)``;
* between Line2 and Line3 — probes with ``T(e1) ~ T(e)``;
* after Line4 — probes with ``T(e) < T(e1)`` (the paper's dual ``>_p``);
* before Line3 — ``T(e1) ⪯ T(e)``; after Line2 — ``T(e) ⪯ T(e1)``;
* probes straddling the lines are incomparable (``⊓``).

:func:`classify_region` reports the region of a probe stamp;
:func:`region_lines` computes, per site, the global-granule boundaries of
each region for *single-cell* probes (one primitive triple), which is what
Figure 2 draws; :func:`render_grid` produces an ASCII rendition of the
figure that the FIG2 benchmark regenerates for the paper's example
``T(e) = {(Site3, 8, 81), (Site6, 7, 72)}``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.time.composite import (
    CompositeTimestamp,
    composite_concurrent,
    composite_happens_after,
    composite_happens_before,
    composite_weak_leq,
)
from repro.time.timestamps import PrimitiveTimestamp


class Region(enum.Enum):
    """Region of the Figure-2 grid relative to a reference stamp ``T(e)``."""

    BEFORE = "before"             # T(probe) <  T(e)           — left of Line1
    WEAK_BEFORE = "weak_before"   # ⪯ only                     — Line1..Line2 band
    CONCURRENT = "concurrent"     # T(probe) ~  T(e)           — Line2..Line3 band
    WEAK_AFTER = "weak_after"     # ⪰ only                     — Line3..Line4 band
    AFTER = "after"               # T(e) <  T(probe) (dual >)  — right of Line4
    INCOMPARABLE = "incomparable"  # straddles the lines


def classify_region(probe: CompositeTimestamp, ref: CompositeTimestamp) -> Region:
    """Which Figure-2 region ``probe`` occupies relative to ``ref``.

    Uses the paper's chosen dual pair: *before* is ``probe <_p ref``;
    *after* is ``probe >_p ref`` (every triple of ``ref`` has a later
    triple in ``probe``).  The weak bands are where only ``⪯``/``⪰``
    holds; anything else straddles the lines and is incomparable.
    """
    if composite_happens_before(probe, ref):
        return Region.BEFORE
    if composite_happens_after(probe, ref):
        return Region.AFTER
    if composite_concurrent(probe, ref):
        return Region.CONCURRENT
    if composite_weak_leq(probe, ref):
        return Region.WEAK_BEFORE
    if composite_weak_leq(ref, probe):
        return Region.WEAK_AFTER
    return Region.INCOMPARABLE


@dataclass(frozen=True, slots=True)
class SiteLines:
    """Per-site line positions (in global granules) for single-cell probes.

    ``line1``: first granule at which a probe stops being ``< T(e)``;
    ``line2``: first granule at which a probe is ``~ T(e)``;
    ``line3``: first granule *after* the concurrent band;
    ``line4``: first granule at which a probe is ``> T(e)`` (dual).

    The bands of Figure 2 are then: before ``line1`` → BEFORE,
    ``[line1, line2)`` → WEAK_BEFORE, ``[line2, line3)`` → CONCURRENT,
    ``[line3, line4)`` → WEAK_AFTER, from ``line4`` on → AFTER.
    A band is empty when its two boundaries coincide.
    """

    site: str
    line1: int
    line2: int
    line3: int
    line4: int


def _cell_probe(site: str, granule: int, ratio: int, tick_offset: int = 0) -> CompositeTimestamp:
    """A single-triple probe stamped inside a grid cell.

    ``tick_offset`` selects the local tick within the granule (0-based);
    relevant only for rows sharing a site with the reference stamp.
    """
    local = granule * ratio + tick_offset
    return CompositeTimestamp.singleton(
        PrimitiveTimestamp(site=site, global_time=granule, local=local)
    )


def classify_cell(
    site: str,
    granule: int,
    ref: CompositeTimestamp,
    ratio: int,
    tick_offset: int = 0,
) -> Region:
    """Region of a grid cell occupied by a single primitive occurrence."""
    return classify_region(_cell_probe(site, granule, ratio, tick_offset), ref)


def region_lines(
    ref: CompositeTimestamp,
    sites: Sequence[str],
    ratio: int,
    granule_range: range | None = None,
) -> list[SiteLines]:
    """Compute Line1-Line4 per site by scanning single-cell probes.

    ``granule_range`` defaults to a window comfortably containing the
    reference stamp's global span plus the two-granule margins.
    """
    lo, hi = ref.global_span()
    if granule_range is None:
        granule_range = range(max(0, lo - 4), hi + 5)
    lines: list[SiteLines] = []
    for site in sites:
        regions = {
            g: classify_cell(site, g, ref, ratio) for g in granule_range
        }
        line1 = _first_not(regions, granule_range, Region.BEFORE)
        line2 = _first_at(regions, granule_range, Region.CONCURRENT, default=line1)
        line3 = _first_after(regions, granule_range, Region.CONCURRENT, default=line2)
        line4 = _first_at(regions, granule_range, Region.AFTER, default=granule_range.stop)
        lines.append(SiteLines(site=site, line1=line1, line2=line2, line3=line3, line4=line4))
    return lines


def _first_not(regions: dict[int, Region], span: range, region: Region) -> int:
    for g in span:
        if regions[g] is not region:
            return g
    return span.stop


def _first_at(regions: dict[int, Region], span: range, region: Region, default: int) -> int:
    for g in span:
        if regions[g] is region:
            return g
    return default


def _first_after(regions: dict[int, Region], span: range, region: Region, default: int) -> int:
    seen = False
    for g in span:
        if regions[g] is region:
            seen = True
        elif seen:
            return g
    return span.stop if seen else default


_REGION_GLYPHS = {
    Region.BEFORE: "<",
    Region.WEAK_BEFORE: "-",
    Region.CONCURRENT: "~",
    Region.WEAK_AFTER: "+",
    Region.AFTER: ">",
    Region.INCOMPARABLE: "#",
}


def render_grid(
    ref: CompositeTimestamp,
    sites: Sequence[str],
    ratio: int,
    granule_range: range | None = None,
) -> str:
    """ASCII rendition of Figure 2 for a reference composite stamp.

    One row per site (Y axis), one column per global granule (X axis);
    each cell shows the region of a single primitive occurrence stamped in
    that cell: ``<`` before, ``-`` weak-before band, ``~`` concurrent,
    ``+`` weak-after band, ``>`` after, ``*`` marks the reference stamp's
    own triples.

    >>> ref = CompositeTimestamp.from_triples(
    ...     [("Site3", 8, 81), ("Site6", 7, 72)])
    >>> print(render_grid(ref, [f"Site{i}" for i in range(1, 9)], 10))
    ... # doctest: +SKIP
    """
    lo, hi = ref.global_span()
    if granule_range is None:
        granule_range = range(max(0, lo - 4), hi + 5)
    ref_cells = {(t.site, t.global_time) for t in ref.stamps}
    width = max(len(s) for s in sites)
    header = " " * (width + 1) + " ".join(f"{g % 100:2d}" for g in granule_range)
    rows = [header]
    for site in sites:
        cells = []
        for g in granule_range:
            if (site, g) in ref_cells:
                cells.append(" *")
            else:
                cells.append(" " + _REGION_GLYPHS[classify_cell(site, g, ref, ratio)])
        rows.append(f"{site:<{width}} " + " ".join(c.strip().rjust(2) for c in cells))
    return "\n".join(rows)
