"""Integer fast-path kernels for the timestamp hot path.

The reference implementations in :mod:`repro.time.timestamps` and
:mod:`repro.time.composite` spell out the paper's definitions literally:
``max_set`` is the O(n²) "not happen-before any other member" filter, and
every composite relation is an all-pairs quantifier sweep.  This module
provides algebraically equivalent O(n) kernels the hot path dispatches
to; ``tests/test_oracle_equivalence.py`` and the Hypothesis suite pin the
equivalence down on randomized inputs.

The kernels rest on three facts about the ``2g_g``-restricted order:

* same-site comparison uses only the local tick, so per site only the
  extreme local ticks matter;
* cross-site comparison uses only the global time with a two-granule
  margin, so across sites only the extreme global times at *some other
  site* matter — which the top-2 distinct-site extrema answer in O(1);
* members of a valid composite timestamp are pairwise concurrent
  (Theorem 5.1), so same-site members share one local tick.

Three exports matter:

* :func:`site_id` / :func:`pack_key` — interned site ids and the
  precomputed integer granule key carried by every
  :class:`~repro.time.timestamps.PrimitiveTimestamp`;
* :func:`relation_code` — the memoized pairwise ``<`` / ``~`` relation
  (``-1`` before, ``0`` concurrent, ``1`` after), keyed on granule keys;
* :func:`fast_max_set` and :class:`StampSummary` — the O(n) Definition
  5.1 maxima and the per-composite extrema digest behind the O(|T2|)
  Definition 5.3 relations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.time.timestamps import PrimitiveTimestamp

_MAX64 = (1 << 64) - 1

# Interned site ids: comparing two small ints is cheaper than comparing
# two strings, and the ids index the packed granule keys.
_site_ids: dict[str, int] = {}


def site_id(site: str) -> int:
    """The process-wide interned id of a site name (stable per process)."""
    sid = _site_ids.get(site)
    if sid is None:
        sid = len(_site_ids)
        _site_ids[site] = sid
    return sid


def pack_key(sid: int, global_time: int, local: int) -> int | tuple[int, int, int]:
    """Pack ``(sid, global, local)`` into one integer granule key.

    The packing is injective — ``local`` in the low 64 bits, ``global``
    in the next 64, the site id above — so key equality is triple
    equality and the key can serve as a dict/memo key directly.  Values
    outside 64 bits (astronomically large tick counts) fall back to the
    tuple itself, which preserves injectivity at some speed cost.
    """
    if global_time <= _MAX64 and local <= _MAX64:
        return (sid << 128) | (global_time << 64) | local
    return (sid, global_time, local)


# --- bulk stamp construction -------------------------------------------------


def batch_stamps(
    triples: Iterable[tuple[str, int, int]],
) -> list["PrimitiveTimestamp"]:
    """Construct primitive timestamps for a whole batch in one pass.

    Equivalent to ``[PrimitiveTimestamp(*t) for t in triples]`` but with
    the per-stamp overhead hoisted out of the loop: one local binding of
    the intern table, ``object.__new__`` instead of the validating
    constructor (validation happens once, inline), and the packed-key
    fast path taken without a function call for in-range ticks.  This is
    the serving runtime's granule-batch ingest kernel — a decoded binary
    frame becomes stamped occurrences through here.
    """
    from repro.errors import TimestampError
    from repro.time.timestamps import PrimitiveTimestamp

    ids = _site_ids
    new = object.__new__
    set_field = object.__setattr__
    out: list[PrimitiveTimestamp] = []
    append = out.append
    for site, global_time, local in triples:
        if local < 0 or global_time < 0:
            raise TimestampError(
                f"timestamp ticks must be non-negative, got "
                f"global={global_time}, local={local} at site {site!r}"
            )
        sid = ids.get(site)
        if sid is None:
            sid = len(ids)
            ids[site] = sid
        if global_time <= _MAX64 and local <= _MAX64:
            key: int | tuple[int, int, int] = (
                (sid << 128) | (global_time << 64) | local
            )
        else:
            key = (sid, global_time, local)
        stamp = new(PrimitiveTimestamp)
        set_field(stamp, "site", site)
        set_field(stamp, "global_time", global_time)
        set_field(stamp, "local", local)
        set_field(stamp, "_sid", sid)
        set_field(stamp, "_key", key)
        set_field(stamp, "_hash", hash((site, global_time, local)))
        append(stamp)
    return out


# --- memoized pairwise relation ---------------------------------------------

# relation_code results keyed on the packed key pair.  Bounded: the cache
# is cleared wholesale when full (simple, and the steady state of a
# detection run re-warms within one event batch).
_rel_cache: dict[object, int] = {}
_REL_CACHE_LIMIT = 1 << 18


def relation_code(a: "PrimitiveTimestamp", b: "PrimitiveTimestamp") -> int:
    """The pairwise relation as an int: ``-1`` a<b, ``1`` b<a, ``0`` ``~``.

    Definition 4.7 on the precomputed fields: same site compares local
    ticks, different sites need the two-granule global gap.  Memoized on
    the packed granule keys.
    """
    ka = a._key
    kb = b._key
    if type(ka) is int and type(kb) is int:
        cache_key: object = (ka << 192) | kb
    else:
        cache_key = (ka, kb)
    code = _rel_cache.get(cache_key)
    if code is None:
        if a._sid == b._sid:
            if a.local < b.local:
                code = -1
            elif b.local < a.local:
                code = 1
            else:
                code = 0
        elif a.global_time < b.global_time - 1:
            code = -1
        elif b.global_time < a.global_time - 1:
            code = 1
        else:
            code = 0
        if len(_rel_cache) >= _REL_CACHE_LIMIT:
            _rel_cache.clear()
        _rel_cache[cache_key] = code
    return code


def clear_caches() -> None:
    """Drop the memoized relations (the site-id table is kept)."""
    _rel_cache.clear()


# --- O(n) max-set ------------------------------------------------------------


def fast_max_set(
    stamps: Iterable["PrimitiveTimestamp"],
) -> frozenset["PrimitiveTimestamp"]:
    """Definition 5.1 maxima in one pass (callers check non-emptiness).

    A stamp is dominated iff a same-site member has a larger local tick,
    or a member at *another* site has a global time more than one granule
    above.  Per-site maximum locals answer the first test; the top-2
    distinct-site maximum globals answer the second without an inner
    loop.
    """
    pool = set(stamps)
    # Per-site maximum local tick, and per-site maximum global time.
    max_local: dict[int, int] = {}
    site_max_g: dict[int, int] = {}
    for t in pool:
        sid = t._sid
        if max_local.get(sid, -1) < t.local:
            max_local[sid] = t.local
        if site_max_g.get(sid, -1) < t.global_time:
            site_max_g[sid] = t.global_time
    # Top-2 distinct-site maximum globals: for any site, the maximum
    # global among *other* sites is one of these two.
    best_g = -1
    best_sid = -1
    second_g = -1
    for sid, g in site_max_g.items():
        if g > best_g:
            second_g = best_g
            best_g = g
            best_sid = sid
        elif g > second_g:
            second_g = g
    survivors = []
    for t in pool:
        sid = t._sid
        if t.local < max_local[sid]:
            continue
        other_g = second_g if sid == best_sid else best_g
        if other_g >= 0 and t.global_time < other_g - 1:
            continue
        survivors.append(t)
    return frozenset(survivors)


# --- per-composite extrema digest -------------------------------------------


class StampSummary:
    """Extrema digest of a pairwise-concurrent stamp set.

    Built once (lazily) per :class:`~repro.time.composite.
    CompositeTimestamp`; answers the two existential quantifiers the
    Definition 5.3 relations are made of in O(1):

    * :meth:`exists_lt` — is some member happen-before ``b``?
    * :meth:`exists_gt` — is some member happen-after ``b``?

    Because members are pairwise concurrent, all same-site members share
    one local tick (``site_local``); the cross-site disjunct needs only
    the minimum/maximum global time *at a site other than b's*, answered
    by top-2 distinct-site extrema of the per-site extremes.
    """

    __slots__ = (
        "site_local",
        "_min1_g", "_min1_sid", "_min2_g",
        "_max1_g", "_max1_sid", "_max2_g",
    )

    def __init__(self, stamps: Iterable["PrimitiveTimestamp"]) -> None:
        site_local: dict[int, int] = {}
        site_min_g: dict[int, int] = {}
        site_max_g: dict[int, int] = {}
        for t in stamps:
            sid = t._sid
            site_local[sid] = t.local
            g = t.global_time
            if sid not in site_min_g:
                site_min_g[sid] = g
                site_max_g[sid] = g
            else:
                if g < site_min_g[sid]:
                    site_min_g[sid] = g
                if g > site_max_g[sid]:
                    site_max_g[sid] = g
        self.site_local = site_local
        min1_g = min1_sid = min2_g = -1
        for sid, g in site_min_g.items():
            if min1_sid < 0 or g < min1_g:
                min2_g = min1_g
                min1_g = g
                min1_sid = sid
            elif min2_g < 0 or g < min2_g:
                min2_g = g
        self._min1_g = min1_g
        self._min1_sid = min1_sid
        self._min2_g = min2_g
        max1_g = max1_sid = max2_g = -1
        for sid, g in site_max_g.items():
            if g > max1_g:
                max2_g = max1_g
                max1_g = g
                max1_sid = sid
            elif g > max2_g:
                max2_g = g
        self._max1_g = max1_g
        self._max1_sid = max1_sid
        self._max2_g = max2_g

    def exists_lt(self, b: "PrimitiveTimestamp") -> bool:
        """``∃ a ∈ summary: a < b`` (some member happens before ``b``)."""
        local = self.site_local.get(b._sid)
        if local is not None and local < b.local:
            return True
        other_min = self._min2_g if b._sid == self._min1_sid else self._min1_g
        return other_min >= 0 and other_min < b.global_time - 1

    def exists_gt(self, b: "PrimitiveTimestamp") -> bool:
        """``∃ a ∈ summary: b < a`` (some member happens after ``b``)."""
        local = self.site_local.get(b._sid)
        if local is not None and local > b.local:
            return True
        other_max = self._max2_g if b._sid == self._max1_sid else self._max1_g
        return other_max > b.global_time + 1
