"""Time substrate: clocks, granularities, and distributed timestamps.

This subpackage implements Sections 4 and 5 of Yang & Chakravarthy
(ICDE 1999):

* :mod:`repro.time.ticks` — granularity arithmetic and the ``TRUNC`` family
  (Definition 4.3).
* :mod:`repro.time.clocks` — a reference clock, drifting local clocks and a
  synchronized ensemble with precision ``Π`` (Section 4.1).
* :mod:`repro.time.timestamps` — primitive timestamps ``(site, global,
  local)`` and the ``<``, ``=``, ``~``, ``⪯`` relations (Definitions
  4.6-4.8).
* :mod:`repro.time.composite` — composite timestamps (max-sets), the join
  procedures and the ``Max`` operator (Definitions 5.1-5.9).
* :mod:`repro.time.orderings` — the alternative composite orderings studied
  in Section 5.1 (``<_p``, ``<_g``, ``<_p1``, ``<_p2``, ``<_p3``).
* :mod:`repro.time.intervals` — open and closed intervals (Definitions 4.9,
  4.10, 5.5, 5.6; Figure 1).
* :mod:`repro.time.regions` — the Figure 2 grid classification of composite
  timestamps.
"""

from repro.time.ticks import Granularity, TimeModel, TruncMode, truncate
from repro.time.clocks import ClockEnsemble, LocalClock, ReferenceClock
from repro.time.timestamps import (
    PrimitiveTimestamp,
    Relation,
    concurrent,
    happens_before,
    relation,
    simultaneous,
    weak_leq,
)
from repro.time.composite import (
    CompositeRelation,
    CompositeTimestamp,
    composite_relation,
    join_concurrent,
    join_incomparable,
    max_of,
    max_of_many,
    max_set,
)
from repro.time.intervals import (
    ClosedInterval,
    OpenInterval,
    closed_global_span,
    open_global_span,
)
from repro.time.logical import (
    CausalHistorySimulator,
    LamportClock,
    LamportStamp,
    VectorClock,
    VectorStamp,
)
from repro.time.regions import Region, classify_region, region_lines, render_grid

__all__ = [
    "CausalHistorySimulator",
    "ClockEnsemble",
    "ClosedInterval",
    "CompositeRelation",
    "CompositeTimestamp",
    "Granularity",
    "LamportClock",
    "LamportStamp",
    "LocalClock",
    "OpenInterval",
    "PrimitiveTimestamp",
    "ReferenceClock",
    "Region",
    "Relation",
    "TimeModel",
    "TruncMode",
    "VectorClock",
    "VectorStamp",
    "classify_region",
    "closed_global_span",
    "composite_relation",
    "concurrent",
    "happens_before",
    "join_concurrent",
    "join_incomparable",
    "max_of",
    "max_of_many",
    "max_set",
    "open_global_span",
    "region_lines",
    "relation",
    "render_grid",
    "simultaneous",
    "truncate",
    "weak_leq",
]
