"""Composite timestamps, the max-set, joins, and the ``Max`` operator.

Implements Section 5 of the paper:

* **max-set** (Definition 5.1, corrected): ``max(ST)`` keeps the stamps of
  ``ST`` that are *not happen-before any other* member.  (The paper's text
  contains a typo — ``∀t1, t < t1`` — that would select the *minimal*
  elements and falsify Theorem 5.1.)
* **composite timestamp** (Definition 5.2): the max-set of the timestamps
  of the constituent primitive events; Theorem 5.1 guarantees its members
  are pairwise concurrent, and :class:`CompositeTimestamp` enforces that
  invariant at construction.
* **temporal relations on composite stamps** (Definitions 5.3/5.4):
  concurrency ``~`` (all pairs concurrent), happen-before ``<_p``
  (``∀t2 ∃t1: t1 < t2``), the paper's *dual* happen-after ``>_p``
  (``∀t2 ∃t1: t1 > t2`` — **not** the converse of ``<_p``),
  incomparability ``⊓``, and the weaker ``⪯``.
* **joins and Max** (Definitions 5.7-5.9): concurrent join is set union;
  incomparable join keeps the un-dominated triples of both sides (a
  corrected reading — the paper's ``∃ts2: ts < ts2`` must be negated or
  Theorem 5.4 fails); ``Max`` picks the later stamp when ordered and joins
  otherwise.

Reproduction findings encoded here (details in ``EXPERIMENTS.md``):

* Theorem 5.4 (``Max(T1,T2) = max(T1 ∪ T2)``) holds when the ordering test
  inside Definition 5.9 is the *domination* ordering ``<_g``
  (``∀t1 ∃t2: t1 < t2``) but **fails** under the literal ``<_p``:
  ``T2 <_p T1`` does not imply every triple of ``T2`` is dominated.  The
  operational :func:`max_of` therefore computes ``max(T1 ∪ T2)`` directly
  (equivalently, Definition 5.9 with ``<_g``); the literal case analysis
  is available as :func:`max_of_cases` for the ablation benchmark.
* Theorem 5.3 (``⪯ ⟺ ~ or <``) holds right-to-left but not left-to-right:
  see :func:`repro.analysis.properties.theorem_5_3_counterexample`.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Iterator

from repro.errors import ConcurrencyViolationError, EmptyTimestampError
from repro.time.kernels import StampSummary, fast_max_set, relation_code
from repro.time.timestamps import PrimitiveTimestamp, happens_before


def max_set(stamps: Iterable[PrimitiveTimestamp]) -> frozenset[PrimitiveTimestamp]:
    """The maxima of a set of primitive stamps (Definition 5.1, corrected).

    A stamp is a *maximum* iff it is not happen-before any other member.
    By Theorem 5.1 the result is pairwise concurrent.  Computed by the
    O(n) kernel (:func:`repro.time.kernels.fast_max_set`); the literal
    quantifier sweep survives as the equivalence tests' oracle.

    >>> a = PrimitiveTimestamp("s1", 8, 80)
    >>> b = PrimitiveTimestamp("s2", 2, 20)
    >>> sorted(t.site for t in max_set([a, b]))
    ['s1']
    """
    result = fast_max_set(stamps)
    if not result:
        raise EmptyTimestampError("max_set of an empty set of timestamps")
    return result


class CompositeRelation(enum.Enum):
    """Exhaustive relation between two composite timestamps (Def 5.3).

    ``BEFORE``/``AFTER`` use the converse pair (``T1 <_p T2`` /
    ``T2 <_p T1``), which is what the detection engine needs; the paper's
    non-converse dual pair is exposed by :func:`paper_relation`.
    """

    BEFORE = "before"
    AFTER = "after"
    CONCURRENT = "concurrent"
    INCOMPARABLE = "incomparable"


class CompositeTimestamp:
    """A distributed composite timestamp: a pairwise-concurrent max-set.

    Construct with :meth:`of` (which applies the max-set to arbitrary
    constituent stamps — the normal path, mirroring Definition 5.2) or
    directly from triples already known to be maxima (validated).

    The comparison operators implement Definition 5.3/5.4: ``<`` is the
    paper's chosen ordering ``<_p``, ``<=`` is ``⪯``, and ``==`` is set
    equality of the triples.  Note ``>`` is implemented as the *converse*
    of ``<`` (see :func:`paper_relation` for the paper's dual ``>_p``).

    >>> t1 = CompositeTimestamp.of(PrimitiveTimestamp("k", 8, 80),
    ...                            PrimitiveTimestamp("l", 7, 70))
    >>> t2 = CompositeTimestamp.of(PrimitiveTimestamp("m", 10, 100))
    >>> t1 < t2
    True
    """

    __slots__ = ("_stamps", "_hash", "_summary")

    def __init__(self, stamps: Iterable[PrimitiveTimestamp]) -> None:
        frozen = frozenset(stamps)
        if not frozen:
            raise EmptyTimestampError("a composite timestamp needs at least one triple")
        # A set equals its max-set iff no member happens before another,
        # so one O(n) kernel pass validates pairwise concurrency; the
        # O(n²) pair hunt runs only to name the offenders on failure.
        if fast_max_set(frozen) != frozen:
            for a in frozen:
                for b in frozen:
                    if a is not b and happens_before(a, b):
                        raise ConcurrencyViolationError(
                            f"composite timestamp members must be pairwise "
                            f"concurrent: {a} < {b}"
                        )
        self._stamps = frozen
        self._hash = hash(frozen)
        self._summary: StampSummary | None = None

    @classmethod
    def _trusted(
        cls, stamps: frozenset[PrimitiveTimestamp]
    ) -> "CompositeTimestamp":
        """Wrap a non-empty set already known to be a max-set (no checks).

        Internal constructor for results that are pairwise concurrent by
        construction — max-set outputs (Theorem 5.1) and the joins.
        """
        self = object.__new__(cls)
        self._stamps = stamps
        self._hash = hash(stamps)
        self._summary = None
        return self

    @property
    def summary(self) -> StampSummary:
        """The lazily built extrema digest driving the O(n) relations."""
        digest = self._summary
        if digest is None:
            digest = StampSummary(self._stamps)
            self._summary = digest
        return digest

    @classmethod
    def of(cls, *stamps: PrimitiveTimestamp) -> "CompositeTimestamp":
        """Build from constituent stamps, keeping only the maxima (Def 5.2)."""
        return cls._trusted(max_set(stamps))

    @classmethod
    def from_iterable(cls, stamps: Iterable[PrimitiveTimestamp]) -> "CompositeTimestamp":
        """Like :meth:`of` but accepts any iterable."""
        return cls._trusted(max_set(stamps))

    @classmethod
    def singleton(cls, stamp: PrimitiveTimestamp) -> "CompositeTimestamp":
        """Lift a primitive stamp to a composite one (primitive events)."""
        return cls._trusted(frozenset((stamp,)))

    @classmethod
    def from_triples(
        cls, triples: Iterable[tuple[str, int, int]]
    ) -> "CompositeTimestamp":
        """Build from raw ``(site, global, local)`` triples, as in the paper."""
        return cls.from_iterable(PrimitiveTimestamp(*t) for t in triples)

    @property
    def stamps(self) -> frozenset[PrimitiveTimestamp]:
        """The member triples (immutable)."""
        return self._stamps

    def sites(self) -> frozenset[str]:
        """Sites contributing a maximum triple."""
        return frozenset(t.site for t in self._stamps)

    def global_span(self) -> tuple[int, int]:
        """Minimum and maximum global time among the member triples."""
        globals_ = [t.global_time for t in self._stamps]
        return (min(globals_), max(globals_))

    def __iter__(self) -> Iterator[PrimitiveTimestamp]:
        return iter(self._stamps)

    def __len__(self) -> int:
        return len(self._stamps)

    def __contains__(self, stamp: PrimitiveTimestamp) -> bool:
        return stamp in self._stamps

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositeTimestamp):
            return NotImplemented
        return self._hash == other._hash and self._stamps == other._stamps

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "CompositeTimestamp") -> bool:
        return composite_happens_before(self, other)

    def __gt__(self, other: "CompositeTimestamp") -> bool:
        return composite_happens_before(other, self)

    def __le__(self, other: "CompositeTimestamp") -> bool:
        return composite_weak_leq(self, other)

    def __ge__(self, other: "CompositeTimestamp") -> bool:
        return composite_weak_leq(other, self)

    def concurrent(self, other: "CompositeTimestamp") -> bool:
        """Composite concurrency ``~`` (Definition 5.3.1)."""
        return composite_concurrent(self, other)

    def incomparable(self, other: "CompositeTimestamp") -> bool:
        """Composite incomparability ``⊓`` (Definition 5.3.3)."""
        return composite_relation(self, other) is CompositeRelation.INCOMPARABLE

    def relation(self, other: "CompositeTimestamp") -> CompositeRelation:
        """Classify against ``other`` (see :func:`composite_relation`)."""
        return composite_relation(self, other)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        triples = sorted(t.as_triple() for t in self._stamps)
        inner = ", ".join(f"({s}, {g}, {l})" for s, g, l in triples)
        return f"CompositeTimestamp{{{inner}}}"


def composite_happens_before(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """Composite happen-before ``<_p`` (Definition 5.3.2).

    ``T1 < T2`` iff for every triple of ``T2`` some triple of ``T1``
    happens before it.  Theorem 5.2: irreflexive and transitive.  The
    inner existential runs on ``T1``'s extrema digest, making the whole
    test O(|T2|).
    """
    exists_lt = t1.summary.exists_lt
    return all(exists_lt(b) for b in t2._stamps)


def composite_happens_after(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The paper's dual happen-after ``>_p`` (Section 5.1).

    ``T1 >_p T2`` iff for every triple of ``T2`` some triple of ``T1``
    happens *after* it.  This is **not** the converse of ``<_p``; it
    equals ``T2 <_g T1`` (domination of ``T2`` by ``T1``).  Figure 2's
    symmetric region bands are drawn with this pair.
    """
    exists_gt = t1.summary.exists_gt
    return all(exists_gt(b) for b in t2._stamps)


def composite_dominated_by(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """Domination ordering ``<_g``: every triple of ``T1`` is below some of ``T2``.

    This is the ordering under which Definition 5.9's case analysis agrees
    with ``max(T1 ∪ T2)`` (Theorem 5.4).
    """
    exists_gt = t2.summary.exists_gt
    return all(exists_gt(a) for a in t1._stamps)


def composite_concurrent(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """Composite concurrency ``~`` (Definition 5.3.1): all pairs concurrent."""
    digest = t1.summary
    return all(
        not digest.exists_lt(b) and not digest.exists_gt(b) for b in t2._stamps
    )


def composite_weak_leq(t1: CompositeTimestamp, t2: CompositeTimestamp) -> bool:
    """The weaker-less-than-or-equal ``⪯`` (Definition 5.4).

    ``T1 ⪯ T2`` iff every pair satisfies the primitive ``⪯`` — by
    trichotomy, iff no member of ``T1`` happens after a member of ``T2``.
    Theorem 5.3 claims this is equivalent to ``T1 ~ T2 or T1 < T2``; only
    the right-to-left direction holds (see ``EXPERIMENTS.md``).
    """
    exists_gt = t1.summary.exists_gt
    return all(not exists_gt(b) for b in t2._stamps)


def composite_relation(
    t1: CompositeTimestamp, t2: CompositeTimestamp
) -> CompositeRelation:
    """Classify a pair using the converse-based pair ``(<_p, converse)``.

    ``BEFORE``/``AFTER`` cannot both hold (transitivity of ``<_p`` would
    contradict the internal concurrency of a max-set); happen-before and
    concurrency are mutually exclusive; incomparability is the residual.
    """
    if composite_happens_before(t1, t2):
        return CompositeRelation.BEFORE
    if composite_happens_before(t2, t1):
        return CompositeRelation.AFTER
    if composite_concurrent(t1, t2):
        return CompositeRelation.CONCURRENT
    return CompositeRelation.INCOMPARABLE


def paper_relation(t1: CompositeTimestamp, t2: CompositeTimestamp) -> CompositeRelation:
    """Classify a pair with the paper's chosen dual pair ``⟨<_p, >_p⟩``.

    Definition 5.3.3 spells incomparability with this pair:
    ``T1 ⊓ T2 ⟺ ¬(T1 < T2 ∨ T1 > T2 ∨ T1 ~ T2)``.  Because ``>_p`` is not
    the converse of ``<_p``, this classification is *asymmetric* — the
    Figure-2 benchmark shows where it differs from
    :func:`composite_relation`.
    """
    if composite_happens_before(t1, t2):
        return CompositeRelation.BEFORE
    if composite_happens_after(t1, t2):
        return CompositeRelation.AFTER
    if composite_concurrent(t1, t2):
        return CompositeRelation.CONCURRENT
    return CompositeRelation.INCOMPARABLE


def join_concurrent(t1: CompositeTimestamp, t2: CompositeTimestamp) -> CompositeTimestamp:
    """Join of concurrent stamps (Definition 5.7): union of the triples.

    Precondition ``T1 ~ T2`` is *not* re-checked here (the ``Max``
    operator dispatches); the result is validated by the
    :class:`CompositeTimestamp` constructor.
    """
    return CompositeTimestamp(t1.stamps | t2.stamps)


def join_incomparable(
    t1: CompositeTimestamp, t2: CompositeTimestamp
) -> CompositeTimestamp:
    """Join of incomparable stamps (Definition 5.8, corrected).

    Keeps the triples of each side that are *not* happen-before any triple
    of the other side — the "latest" information of both sets.  With this
    reading the result is exactly ``max(T1 ∪ T2)``.

    The kept union is pairwise concurrent for *any* inputs — within a
    side by Theorem 5.1, across sides because survival rules out both
    cross-side orderings — so construction skips re-validation.
    """
    left_gt = t2.summary.exists_gt
    right_gt = t1.summary.exists_gt
    kept = frozenset(
        [a for a in t1._stamps if not left_gt(a)]
        + [b for b in t2._stamps if not right_gt(b)]
    )
    if not kept:
        raise EmptyTimestampError(
            "a composite timestamp needs at least one triple"
        )
    return CompositeTimestamp._trusted(kept)


def max_of(t1: CompositeTimestamp, t2: CompositeTimestamp) -> CompositeTimestamp:
    """The operational ``Max`` operator: ``max(T1 ∪ T2)`` (Theorem 5.4).

    Equivalent to Definition 5.9's case analysis with the domination
    ordering ``<_g`` (see module docstring); always a valid composite
    timestamp carrying the "latest" information of both arguments.

    >>> t1 = CompositeTimestamp.from_triples([("s1", 8, 80)])
    >>> t2 = CompositeTimestamp.from_triples([("s2", 12, 120)])
    >>> max_of(t1, t2) == t2
    True
    """
    s1 = t1._stamps
    s2 = t2._stamps
    if s1 is s2 or s1 == s2:
        return t1
    if len(s1) == 1 and len(s2) == 1:
        # The dominant shape on the detection hot path: two singletons
        # reduce to one memoized primitive comparison.
        (a,) = s1
        (b,) = s2
        code = relation_code(a, b)
        if code < 0:
            return t2
        if code > 0:
            return t1
        return CompositeTimestamp._trusted(s1 | s2)
    union = s1 | s2
    # A valid composite is its own max-set, so a superset side wins as-is.
    if len(union) == len(s1):
        return t1
    if len(union) == len(s2):
        return t2
    return CompositeTimestamp._trusted(fast_max_set(union))


OrderingTest = Callable[[CompositeTimestamp, CompositeTimestamp], bool]


def max_of_cases(
    t1: CompositeTimestamp,
    t2: CompositeTimestamp,
    ordering: OrderingTest = composite_dominated_by,
) -> CompositeTimestamp:
    """Definition 5.9's literal case analysis, with a pluggable ordering.

    ``Max(T1, T2) = T1`` if ``T2 ≺ T1``; ``T2`` if ``T1 ≺ T2``; the join of
    the two otherwise (concurrent → union, else the incomparable join).
    With ``ordering=composite_dominated_by`` (``<_g``) this equals
    :func:`max_of` on all inputs; with
    ``ordering=composite_happens_before`` (``<_p``) it disagrees on inputs
    where the earlier stamp is not fully dominated — the MAX ablation
    benchmark quantifies how often.
    """
    if ordering(t2, t1):
        return t1
    if ordering(t1, t2):
        return t2
    if composite_concurrent(t1, t2):
        return join_concurrent(t1, t2)
    return join_incomparable(t1, t2)


def max_of_many(stamps: Iterable[CompositeTimestamp]) -> CompositeTimestamp:
    """Fold :func:`max_of` over one or more composite stamps.

    By Theorem 5.4 the fold order does not matter: the result is the
    max-set of the union of all constituent triples.
    """
    pool = stamps if isinstance(stamps, (list, tuple)) else list(stamps)
    if not pool:
        raise EmptyTimestampError("max_of_many needs at least one composite timestamp")
    if len(pool) == 1:
        return pool[0]
    if len(pool) == 2:
        return max_of(pool[0], pool[1])
    all_stamps: set[PrimitiveTimestamp] = set()
    for stamp in pool:
        all_stamps |= stamp._stamps
    return CompositeTimestamp._trusted(fast_max_set(all_stamps))
