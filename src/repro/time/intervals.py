"""Open and closed intervals over distributed timestamps (Figure 1).

Implements Definitions 4.9/4.10 (primitive stamps) and 5.5/5.6 (composite
stamps).  Both interval kinds are generic over the two stamp families
because the relations share spelling:

* the **open interval** ``(lo, hi)`` requires ``lo < hi`` and contains
  ``t`` iff ``lo < t < hi``;
* the **closed interval** ``[lo, hi]`` requires ``lo ⪯ hi`` and contains
  ``t`` iff ``lo ⪯ t ⪯ hi``.

For cross-site *primitive* endpoints the paper derives the intuitive
global-granule spans reproduced by :func:`open_global_span` and
:func:`closed_global_span`:

* open: ``{lo.global + 2, ..., hi.global - 2}`` — a cross-site member must
  clear one granule on each side, so a non-empty open interval needs
  ``lo.global < hi.global - 3``;
* closed: ``{lo.global - 1, ..., hi.global + 1}`` — concurrency reaches one
  granule beyond each endpoint.

These spans are exactly what Figure 1 draws, and the Figure-1 benchmark
regenerates them for a sweep of endpoint gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, TypeVar, Union

from repro.errors import IntervalError
from repro.time.composite import (
    CompositeTimestamp,
    composite_happens_before,
    composite_weak_leq,
)
from repro.time.timestamps import PrimitiveTimestamp, happens_before, weak_leq

Stamp = TypeVar("Stamp", PrimitiveTimestamp, CompositeTimestamp)
AnyStamp = Union[PrimitiveTimestamp, CompositeTimestamp]


def _lt(a: AnyStamp, b: AnyStamp) -> bool:
    if isinstance(a, PrimitiveTimestamp) and isinstance(b, PrimitiveTimestamp):
        return happens_before(a, b)
    if isinstance(a, CompositeTimestamp) and isinstance(b, CompositeTimestamp):
        return composite_happens_before(a, b)
    raise IntervalError(
        f"cannot mix primitive and composite stamps: {type(a).__name__} vs "
        f"{type(b).__name__}"
    )


def _leq(a: AnyStamp, b: AnyStamp) -> bool:
    if isinstance(a, PrimitiveTimestamp) and isinstance(b, PrimitiveTimestamp):
        return weak_leq(a, b)
    if isinstance(a, CompositeTimestamp) and isinstance(b, CompositeTimestamp):
        return composite_weak_leq(a, b)
    raise IntervalError(
        f"cannot mix primitive and composite stamps: {type(a).__name__} vs "
        f"{type(b).__name__}"
    )


@dataclass(frozen=True, slots=True)
class OpenInterval(Generic[Stamp]):
    """The open interval ``(lo, hi)`` (Definitions 4.9 and 5.5).

    Requires ``lo < hi`` under the appropriate happen-before; membership is
    strict on both sides.

    >>> lo = PrimitiveTimestamp("a", 2, 20)
    >>> hi = PrimitiveTimestamp("b", 9, 90)
    >>> OpenInterval(lo, hi).contains(PrimitiveTimestamp("c", 5, 50))
    True
    """

    lo: Stamp
    hi: Stamp

    def __post_init__(self) -> None:
        if not _lt(self.lo, self.hi):
            raise IntervalError(
                f"open interval requires lo < hi, got lo={self.lo!r} hi={self.hi!r}"
            )

    def contains(self, stamp: Stamp) -> bool:
        """``lo < stamp < hi``."""
        return _lt(self.lo, stamp) and _lt(stamp, self.hi)

    def __contains__(self, stamp: Stamp) -> bool:
        return self.contains(stamp)


@dataclass(frozen=True, slots=True)
class ClosedInterval(Generic[Stamp]):
    """The closed interval ``[lo, hi]`` (Definitions 4.10 and 5.6).

    Requires ``lo ⪯ hi`` (the paper's precondition reads ``~`` in 4.10 but
    its derivation and Figure 1 use ``⪯``; we take the weaker, consistent
    reading).  Membership is ``lo ⪯ stamp ⪯ hi``.
    """

    lo: Stamp
    hi: Stamp

    def __post_init__(self) -> None:
        if not _leq(self.lo, self.hi):
            raise IntervalError(
                f"closed interval requires lo ⪯ hi, got lo={self.lo!r} hi={self.hi!r}"
            )

    def contains(self, stamp: Stamp) -> bool:
        """``lo ⪯ stamp ⪯ hi``."""
        return _leq(self.lo, stamp) and _leq(stamp, self.hi)

    def __contains__(self, stamp: Stamp) -> bool:
        return self.contains(stamp)


def open_global_span(lo: PrimitiveTimestamp, hi: PrimitiveTimestamp) -> range:
    """Global granules a *cross-site* stamp may occupy inside ``(lo, hi)``.

    Section 4.2: a member must satisfy ``lo.global < g - 1`` and
    ``g < hi.global - 1``, i.e. ``g ∈ {lo.global + 2, ..., hi.global - 2}``.
    Empty when ``lo.global >= hi.global - 3``.
    """
    return range(lo.global_time + 2, hi.global_time - 1)


def closed_global_span(lo: PrimitiveTimestamp, hi: PrimitiveTimestamp) -> range:
    """Global granules a *cross-site* stamp may occupy inside ``[lo, hi]``.

    Section 4.2: concurrency with each endpoint reaches one granule beyond
    it, so ``g ∈ {lo.global - 1, ..., hi.global + 1}`` (clamped at zero).
    """
    start = max(0, lo.global_time - 1)
    return range(start, hi.global_time + 2)
