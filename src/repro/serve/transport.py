"""Worker transports: how the supervisor reaches its shard workers.

The supervisor's machinery — WAL replay, the ``(seq, k)`` detection
ledger, heartbeat liveness, checkpoint frames — is transport-agnostic:
it sends and receives the control frames of
:mod:`repro.serve.protocol`.  This module gives that traffic a uniform
carrier interface:

* :class:`SubprocessTransport` — today's deployment shape.  Each shard
  is a local ``repro serve-worker`` child process; frames travel as
  JSONL over its stdin/stdout pipes, semantics unchanged.

* :class:`TcpTransport` — shards run on other machines behind
  ``repro serve-worker --listen HOST:PORT``.  Each (re)connection opens
  with a JSONL ``hello`` control frame naming the shard and offering
  codecs; the worker answers ``hello_ack`` and both sides switch to the
  negotiated codec (binary control frames when both speak v1).  A
  connection is a worker *incarnation*: the listener binds a fresh
  replica per connection, so supervisor-side ``kill`` + reconnect is
  exactly the subprocess respawn — register, restore, replay.

Shard ``k`` connects to ``endpoints[k % len(endpoints)]``, so one
listener hosts many shards and ``scale(n)`` needs no new machines.  A
dead endpoint is skipped: connect falls through the remaining
endpoints in round-robin order before giving up, which keeps a cluster
serving (and re-balancing) through the permanent loss of a worker
machine.
"""

from __future__ import annotations

import asyncio
import json
import time
from abc import ABC, abstractmethod
from typing import Any

from repro.errors import ReproError
from repro.serve.protocol import (
    CodecError,
    StreamDecoder,
    get_codec,
    parse_frame,
)

#: Seconds a TCP connect + hello exchange gets before counting as a
#: failed spawn attempt (the supervisor's retry/backoff machinery then
#: takes over, exactly as for a subprocess that failed to start).
CONNECT_TIMEOUT = 10.0


class WorkerLink(ABC):
    """One live supervisor<->worker channel carrying control frames."""

    #: Frames discarded because they were oversized or undecodable.
    frames_dropped: int = 0

    @abstractmethod
    async def send(self, frame: dict[str, Any]) -> None:
        """Write one control frame (raises ``OSError``-family on a dead
        channel, like a broken pipe would)."""

    @abstractmethod
    async def read(self) -> dict[str, Any] | None:
        """The next parsed control frame, or ``None`` on EOF.

        Malformed units are skipped (counted in :attr:`frames_dropped`
        when they represent lost payload); the channel survives them.
        """

    @abstractmethod
    def kill(self) -> None:
        """Tear the channel down abruptly (process kill / socket abort)."""

    @abstractmethod
    def close_input(self) -> None:
        """Close the supervisor->worker direction (graceful shutdown)."""

    async def wait(self, timeout: float = 10.0) -> None:
        """Wait for the underlying resource to be released (best effort)."""


class WorkerTransport(ABC):
    """Factory of :class:`WorkerLink`\\ s, one per shard incarnation."""

    name: str

    @abstractmethod
    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        """Bring up one worker incarnation for ``shard``."""

    def describe(self) -> str:
        return self.name


class SubprocessLink(WorkerLink):
    """JSONL over a supervised child process's stdin/stdout pipes."""

    def __init__(self, process: asyncio.subprocess.Process) -> None:
        self.process = process
        self.frames_dropped = 0

    async def send(self, frame: dict[str, Any]) -> None:
        line = json.dumps(frame, sort_keys=True) + "\n"
        self.process.stdin.write(line.encode("utf-8"))
        await self.process.stdin.drain()

    async def read(self) -> dict[str, Any] | None:
        stream = self.process.stdout
        while True:
            try:
                raw = await stream.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The stream reader discarded a frame past the limit.
                self.frames_dropped += 1
                continue
            if not raw:
                return None
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                return parse_frame(text)
            except ReproError:
                continue

    def kill(self) -> None:
        if self.process.returncode is None:
            self.process.kill()

    def close_input(self) -> None:
        try:
            self.process.stdin.close()
        except (OSError, ConnectionError):  # pragma: no cover - defensive
            pass

    async def wait(self, timeout: float = 10.0) -> None:
        if self.process.returncode is None:
            try:
                await asyncio.wait_for(self.process.wait(), timeout=timeout)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                self.process.kill()
                await self.process.wait()


class SubprocessTransport(WorkerTransport):
    """Each shard a local ``repro serve-worker`` child process."""

    name = "subprocess"

    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        import sys

        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.cli",
            "serve-worker",
            "--shard",
            str(shard),
            "--timer-ratio",
            str(timer_ratio),
            "--heartbeat-interval",
            str(heartbeat_interval),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            limit=frame_limit,
        )
        return SubprocessLink(process)


class TcpLink(WorkerLink):
    """Negotiated control frames over one TCP connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec_name: str,
        frame_limit: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec_name = codec_name
        self.frames_dropped = 0
        self._binary = get_codec("binary")
        self._decoder = StreamDecoder(
            max_line_bytes=frame_limit, max_frame_bytes=frame_limit
        )
        self._pending: list[dict[str, Any]] = []

    async def send(self, frame: dict[str, Any]) -> None:
        if self.codec_name == "binary":
            self.writer.write(self._binary.encode_control(frame))
        else:
            self.writer.write(
                (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
            )
        await self.writer.drain()

    async def read(self) -> dict[str, Any] | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            try:
                chunk = await self.reader.read(1 << 16)
            except (OSError, ConnectionError):
                return None
            if not chunk:
                return None
            for unit in self._decoder.feed(chunk):
                frame = self._decode_unit(unit)
                if frame is not None:
                    self._pending.append(frame)

    def _decode_unit(self, unit: Any) -> dict[str, Any] | None:
        if unit.kind == "error":
            self.frames_dropped += 1
            return None
        try:
            if unit.kind == "frame":
                return self._binary.decode_control(bytes(unit.payload))
            return parse_frame(unit.payload.decode("utf-8", errors="replace"))
        except (CodecError, ReproError):
            self.frames_dropped += 1
            return None

    def kill(self) -> None:
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    def close_input(self) -> None:
        try:
            if self.writer.can_write_eof():
                self.writer.write_eof()
        except (OSError, ConnectionError):  # pragma: no cover - defensive
            pass

    async def wait(self, timeout: float = 10.0) -> None:
        try:
            self.writer.close()
            await asyncio.wait_for(self.writer.wait_closed(), timeout=timeout)
        except (asyncio.TimeoutError, OSError, ConnectionError):
            pass


class TcpTransport(WorkerTransport):
    """Shards served by remote ``repro serve-worker --listen`` processes.

    ``endpoints`` are ``host:port`` strings; shard ``k`` prefers
    ``endpoints[k % len(endpoints)]`` and falls through the others on
    connection failure, so losing one worker machine re-routes its
    shards to the survivors instead of stranding them.
    """

    name = "tcp"

    def __init__(self, endpoints: tuple[str, ...], *, codec: str = "auto") -> None:
        if not endpoints:
            raise ReproError("TcpTransport needs at least one endpoint")
        self.endpoints = tuple(endpoints)
        self.codec = codec
        self.connects = 0
        self.endpoint_failures = 0

    @staticmethod
    def _split(endpoint: str) -> tuple[str, int]:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(f"worker endpoint {endpoint!r} is not HOST:PORT")
        return host, int(port)

    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        preferred = shard % len(self.endpoints)
        order = [
            self.endpoints[(preferred + step) % len(self.endpoints)]
            for step in range(len(self.endpoints))
        ]
        failure: Exception | None = None
        for endpoint in order:
            host, port = self._split(endpoint)
            try:
                return await asyncio.wait_for(
                    self._handshake(
                        host,
                        port,
                        shard,
                        timer_ratio=timer_ratio,
                        heartbeat_interval=heartbeat_interval,
                        frame_limit=frame_limit,
                    ),
                    timeout=CONNECT_TIMEOUT,
                )
            except (OSError, ConnectionError, asyncio.TimeoutError,
                    ReproError) as error:
                failure = error
                self.endpoint_failures += 1
        raise ReproError(
            f"no worker endpoint reachable for shard {shard} "
            f"(tried {', '.join(order)}): {failure}"
        )

    async def _handshake(
        self,
        host: str,
        port: int,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> TcpLink:
        reader, writer = await asyncio.open_connection(host, port)
        offered = (
            ["jsonl"] if self.codec == "jsonl" else ["binary", "jsonl"]
        )
        hello = {
            "op": "hello",
            "shard": shard,
            "codecs": offered,
            "timer_ratio": timer_ratio,
            "heartbeat_interval": heartbeat_interval,
            "t": time.monotonic(),
        }
        writer.write((json.dumps(hello, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
        # The ack is always a JSONL line, so a v0-only worker can answer.
        raw = await reader.readline()
        if not raw:
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} closed during hello handshake"
            )
        ack = parse_frame(raw.decode("utf-8", errors="replace").strip())
        if ack.get("op") != "hello_ack":
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} answered hello with "
                f"{ack.get('op')!r}, expected hello_ack"
            )
        codec_name = str(ack.get("codec", "jsonl"))
        if codec_name not in offered:
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} chose unoffered codec "
                f"{codec_name!r}"
            )
        self.connects += 1
        return TcpLink(reader, writer, codec_name, frame_limit)


def resolve_transport(
    transport: "str | WorkerTransport",
    workers: tuple[str, ...] | None = None,
    *,
    codec: str = "auto",
) -> WorkerTransport:
    """Normalize a transport argument (name, instance, or ``"auto"``)."""
    if isinstance(transport, WorkerTransport):
        return transport
    if transport == "auto":
        transport = "tcp" if workers else "subprocess"
    if transport == "subprocess":
        return SubprocessTransport()
    if transport == "tcp":
        if not workers:
            raise ReproError(
                "tcp transport needs workers=('host:port', ...) endpoints"
            )
        return TcpTransport(tuple(workers), codec=codec)
    raise ReproError(
        f"unknown transport {transport!r}; expected subprocess, tcp, or auto"
    )
