"""Worker transports: how the supervisor reaches its shard workers.

The supervisor's machinery — WAL replay, the ``(seq, k)`` detection
ledger, heartbeat liveness, checkpoint frames — is transport-agnostic:
it sends and receives the control frames of
:mod:`repro.serve.protocol`.  This module gives that traffic a uniform
carrier interface:

* :class:`SubprocessTransport` — today's deployment shape.  Each shard
  is a local ``repro serve-worker`` child process; frames travel as
  JSONL over its stdin/stdout pipes, semantics unchanged.

* :class:`TcpTransport` — shards run on other machines behind
  ``repro serve-worker --listen HOST:PORT``.  Each (re)connection opens
  with a JSONL ``hello`` control frame naming the shard and offering
  codecs; the worker answers ``hello_ack`` and both sides switch to the
  negotiated codec (binary control frames when both speak v1).

A TCP connection used to be a worker *incarnation* — any drop meant a
full respawn.  With sessions (the default), the hello carries a session
id and a resume watermark, the worker keeps the replica alive for a
grace window after a disconnect, and :class:`ResumableTcpLink`
reconnects under a :class:`~repro.serve.session.RetryPolicy` and
resumes mid-stream: both directions replay their unacknowledged frame
buffers (:class:`~repro.serve.session.SessionHalf`), so a severed and
healed link loses nothing and duplicates nothing.  Only when the
deadline expires, the worker already discarded the session, or the
supervisor itself killed the link does the link report dead — at which
point the existing respawn path (register, restore, replay) takes over.

Shard ``k`` connects to ``endpoints[k % len(endpoints)]``, so one
listener hosts many shards and ``scale(n)`` needs no new machines.  A
dead endpoint is skipped: connect falls through the remaining
endpoints in round-robin order before giving up, which keeps a cluster
serving (and re-balancing) through the permanent loss of a worker
machine.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.errors import ReproError
from repro.serve.protocol import (
    CodecError,
    StreamDecoder,
    get_codec,
    parse_frame,
)
from repro.serve.session import (
    DEFAULT_SESSION_GRACE,
    RetryPolicy,
    SessionHalf,
    new_session_id,
)

#: Seconds a TCP connect + hello exchange gets before counting as a
#: failed spawn attempt (the supervisor's retry/backoff machinery then
#: takes over, exactly as for a subprocess that failed to start).
CONNECT_TIMEOUT = 10.0


class WorkerLink(ABC):
    """One live supervisor<->worker channel carrying control frames."""

    #: Frames discarded because they were oversized or undecodable.
    frames_dropped: int = 0

    @abstractmethod
    async def send(self, frame: dict[str, Any]) -> None:
        """Write one control frame (raises ``OSError``-family on a dead
        channel, like a broken pipe would)."""

    @abstractmethod
    async def read(self) -> dict[str, Any] | None:
        """The next parsed control frame, or ``None`` on EOF.

        Malformed units are skipped (counted in :attr:`frames_dropped`
        when they represent lost payload); the channel survives them.
        """

    @abstractmethod
    def kill(self) -> None:
        """Tear the channel down abruptly (process kill / socket abort)."""

    @abstractmethod
    def close_input(self) -> None:
        """Close the supervisor->worker direction (graceful shutdown)."""

    async def wait(self, timeout: float = 10.0) -> None:
        """Wait for the underlying resource to be released (best effort)."""


class WorkerTransport(ABC):
    """Factory of :class:`WorkerLink`\\ s, one per shard incarnation."""

    name: str

    @abstractmethod
    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        """Bring up one worker incarnation for ``shard``."""

    def describe(self) -> str:
        return self.name


class SubprocessLink(WorkerLink):
    """JSONL over a supervised child process's stdin/stdout pipes."""

    def __init__(self, process: asyncio.subprocess.Process) -> None:
        self.process = process
        self.frames_dropped = 0

    async def send(self, frame: dict[str, Any]) -> None:
        line = json.dumps(frame, sort_keys=True) + "\n"
        self.process.stdin.write(line.encode("utf-8"))
        await self.process.stdin.drain()

    async def read(self) -> dict[str, Any] | None:
        stream = self.process.stdout
        while True:
            try:
                raw = await stream.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The stream reader discarded a frame past the limit.
                self.frames_dropped += 1
                continue
            if not raw:
                return None
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                return parse_frame(text)
            except ReproError:
                continue

    def kill(self) -> None:
        if self.process.returncode is None:
            self.process.kill()

    def close_input(self) -> None:
        try:
            self.process.stdin.close()
        except (OSError, ConnectionError):  # pragma: no cover - defensive
            pass

    async def wait(self, timeout: float = 10.0) -> None:
        if self.process.returncode is None:
            try:
                await asyncio.wait_for(self.process.wait(), timeout=timeout)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                self.process.kill()
                await self.process.wait()


class SubprocessTransport(WorkerTransport):
    """Each shard a local ``repro serve-worker`` child process."""

    name = "subprocess"

    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        import sys

        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.cli",
            "serve-worker",
            "--shard",
            str(shard),
            "--timer-ratio",
            str(timer_ratio),
            "--heartbeat-interval",
            str(heartbeat_interval),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            limit=frame_limit,
        )
        return SubprocessLink(process)


class TcpLink(WorkerLink):
    """Negotiated control frames over one TCP connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec_name: str,
        frame_limit: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec_name = codec_name
        self.frames_dropped = 0
        self._binary = get_codec("binary")
        self._decoder = StreamDecoder(
            max_line_bytes=frame_limit, max_frame_bytes=frame_limit
        )
        self._pending: list[dict[str, Any]] = []

    async def send(self, frame: dict[str, Any]) -> None:
        if self.codec_name == "binary":
            self.writer.write(self._binary.encode_control(frame))
        else:
            self.writer.write(
                (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
            )
        await self.writer.drain()

    async def read(self) -> dict[str, Any] | None:
        while True:
            if self._pending:
                return self._pending.pop(0)
            try:
                chunk = await self.reader.read(1 << 16)
            except (OSError, ConnectionError):
                return None
            if not chunk:
                return None
            for unit in self._decoder.feed(chunk):
                frame = self._decode_unit(unit)
                if frame is not None:
                    self._pending.append(frame)

    def _decode_unit(self, unit: Any) -> dict[str, Any] | None:
        if unit.kind == "error":
            self.frames_dropped += 1
            return None
        try:
            if unit.kind == "frame":
                return self._binary.decode_control(bytes(unit.payload))
            return parse_frame(unit.payload.decode("utf-8", errors="replace"))
        except (CodecError, ReproError):
            self.frames_dropped += 1
            return None

    def kill(self) -> None:
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    def close_input(self) -> None:
        try:
            if self.writer.can_write_eof():
                self.writer.write_eof()
        except (OSError, ConnectionError):  # pragma: no cover - defensive
            pass

    async def wait(self, timeout: float = 10.0) -> None:
        try:
            self.writer.close()
            await asyncio.wait_for(self.writer.wait_closed(), timeout=timeout)
        except (asyncio.TimeoutError, OSError, ConnectionError):
            pass


class TcpTransport(WorkerTransport):
    """Shards served by remote ``repro serve-worker --listen`` processes.

    ``endpoints`` are ``host:port`` strings; shard ``k`` prefers
    ``endpoints[k % len(endpoints)]`` and falls through the others on
    connection failure, so losing one worker machine re-routes its
    shards to the survivors instead of stranding them.
    """

    name = "tcp"

    def __init__(
        self,
        endpoints: tuple[str, ...],
        *,
        codec: str = "auto",
        retry_policy: RetryPolicy | None = None,
        session_grace: float | None = None,
        resume: bool = True,
        seed: int = 0,
        link_filter: "Callable[[WorkerLink, int], WorkerLink] | None" = None,
    ) -> None:
        if not endpoints:
            raise ReproError("TcpTransport needs at least one endpoint")
        self.endpoints = tuple(endpoints)
        self.codec = codec
        self.retry_policy = retry_policy or RetryPolicy()
        self.session_grace = (
            session_grace if session_grace is not None else DEFAULT_SESSION_GRACE
        )
        self.resume = resume
        self.seed = seed
        #: Optional in-path fault injector: wraps every raw connection
        #: *below* the session layer (repro.serve.netfault sets this).
        self.link_filter = link_filter
        self.connects = 0
        self.endpoint_failures = 0

    @staticmethod
    def _split(endpoint: str) -> tuple[str, int]:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ReproError(f"worker endpoint {endpoint!r} is not HOST:PORT")
        return host, int(port)

    async def connect(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
    ) -> WorkerLink:
        if not self.resume:
            link, _ack = await self.open_link(
                shard,
                timer_ratio=timer_ratio,
                heartbeat_interval=heartbeat_interval,
                frame_limit=frame_limit,
            )
            return link
        link = ResumableTcpLink(
            self,
            shard,
            timer_ratio=timer_ratio,
            heartbeat_interval=heartbeat_interval,
            frame_limit=frame_limit,
            policy=self.retry_policy,
            session_grace=self.session_grace,
            rng=random.Random(self.seed * 1_000_003 + shard),
        )
        await link.establish()
        return link

    async def open_link(
        self,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
        hello_extra: dict[str, Any] | None = None,
        timeout: float | None = None,
    ) -> tuple[WorkerLink, dict[str, Any]]:
        """One connection attempt round-robin over the endpoints.

        Bounded per endpoint by ``timeout`` (default
        :data:`CONNECT_TIMEOUT`); a total failure raises a
        :class:`~repro.errors.ReproError` naming every unreachable
        address with its specific failure — startup against a down
        listener fails fast and legibly instead of hanging.
        """
        preferred = shard % len(self.endpoints)
        order = [
            self.endpoints[(preferred + step) % len(self.endpoints)]
            for step in range(len(self.endpoints))
        ]
        failures: list[str] = []
        for endpoint in order:
            host, port = self._split(endpoint)
            try:
                link, ack = await asyncio.wait_for(
                    self._handshake(
                        host,
                        port,
                        shard,
                        timer_ratio=timer_ratio,
                        heartbeat_interval=heartbeat_interval,
                        frame_limit=frame_limit,
                        hello_extra=hello_extra,
                    ),
                    timeout=timeout if timeout is not None else CONNECT_TIMEOUT,
                )
            except asyncio.TimeoutError:
                failures.append(f"{endpoint} (connect timed out)")
                self.endpoint_failures += 1
            except (OSError, ConnectionError, ReproError) as error:
                failures.append(f"{endpoint} ({error})")
                self.endpoint_failures += 1
            else:
                if self.link_filter is not None:
                    link = self.link_filter(link, shard)
                return link, ack
        raise ReproError(
            f"no worker endpoint reachable for shard {shard}: "
            + "; ".join(failures)
        )

    async def _handshake(
        self,
        host: str,
        port: int,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
        hello_extra: dict[str, Any] | None = None,
    ) -> tuple[TcpLink, dict[str, Any]]:
        reader, writer = await asyncio.open_connection(host, port)
        offered = (
            ["jsonl"] if self.codec == "jsonl" else ["binary", "jsonl"]
        )
        hello = {
            "op": "hello",
            "shard": shard,
            "codecs": offered,
            "timer_ratio": timer_ratio,
            "heartbeat_interval": heartbeat_interval,
            "t": time.monotonic(),
        }
        if hello_extra:
            hello.update(hello_extra)
        writer.write((json.dumps(hello, sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
        # The ack is always a JSONL line, so a v0-only worker can answer.
        raw = await reader.readline()
        if not raw:
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} closed during hello handshake"
            )
        ack = parse_frame(raw.decode("utf-8", errors="replace").strip())
        if ack.get("op") != "hello_ack":
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} answered hello with "
                f"{ack.get('op')!r}, expected hello_ack"
            )
        codec_name = str(ack.get("codec", "jsonl"))
        if codec_name not in offered:
            writer.close()
            raise ReproError(
                f"worker at {host}:{port} chose unoffered codec "
                f"{codec_name!r}"
            )
        self.connects += 1
        return TcpLink(reader, writer, codec_name, frame_limit), ack


class _SessionLost(Exception):
    """The worker no longer holds our session (grace expired/restarted)."""


class ResumableTcpLink(WorkerLink):
    """A TCP worker link that survives drops by resuming its session.

    Wraps one live :class:`TcpLink` at a time.  Every outbound frame is
    numbered and buffered by a :class:`~repro.serve.session.SessionHalf`
    and every inbound frame deduplicated by it, so a reconnect replays
    exactly the frames the other side never saw.  On an I/O failure
    both :meth:`send` and :meth:`read` run the same reconnect loop
    under the link's :class:`~repro.serve.session.RetryPolicy` —
    exponential backoff with deterministic jitter, a per-attempt
    timeout, and an overall deadline.  The link reports dead (``read``
    returns ``None`` / ``send`` raises) only when the deadline expires,
    the worker answered ``resumed: false``, or :meth:`kill` was called
    — at which point the supervisor's ordinary respawn path takes over.

    ``on_resume`` (set by the supervisor) fires after each successful
    resume so the heartbeat monitor's liveness window can be re-armed —
    a link that was severed for most of a suspicion window must not
    come back one miss from suspicion.
    """

    def __init__(
        self,
        transport: TcpTransport,
        shard: int,
        *,
        timer_ratio: int,
        heartbeat_interval: float,
        frame_limit: int,
        policy: RetryPolicy,
        session_grace: float,
        rng: random.Random,
    ) -> None:
        self.transport = transport
        self.shard = shard
        self.timer_ratio = timer_ratio
        self.heartbeat_interval = heartbeat_interval
        self.frame_limit = frame_limit
        self.policy = policy
        self.session_grace = session_grace
        self.rng = rng
        self.session = SessionHalf()
        self.session_id = new_session_id()
        self.on_resume: Callable[[], None] | None = None
        self.resumes = 0
        self.frames_dropped = 0
        self._inner: WorkerLink | None = None
        self._inner_dropped = 0
        self._generation = 0
        self._closed = False
        self._finishing = False
        self._lock = asyncio.Lock()

    @property
    def codec_name(self) -> str:
        """The live connection's negotiated codec (jsonl when down)."""
        inner = self._inner
        return getattr(inner, "codec_name", "jsonl") if inner else "jsonl"

    async def establish(self) -> None:
        """Open the first connection and register the session id."""
        self._inner, _ack = await self.transport.open_link(
            self.shard,
            timer_ratio=self.timer_ratio,
            heartbeat_interval=self.heartbeat_interval,
            frame_limit=self.frame_limit,
            hello_extra={
                "session": self.session_id,
                "session_grace": self.session_grace,
            },
        )
        self._inner_dropped = 0

    async def _resume_once(self) -> WorkerLink:
        """One reconnect + resume attempt (no retries, no timeout)."""
        link, ack = await self.transport.open_link(
            self.shard,
            timer_ratio=self.timer_ratio,
            heartbeat_interval=self.heartbeat_interval,
            frame_limit=self.frame_limit,
            hello_extra={
                "session": self.session_id,
                "session_grace": self.session_grace,
                "resume": True,
                "recv": self.session.recv_n,
            },
            timeout=self.policy.attempt_timeout,
        )
        if not ack.get("resumed"):
            link.kill()
            raise _SessionLost()
        # Replay everything the worker never delivered; its own replay
        # of the frames we never saw is already in flight.
        for frame in self.session.replay_after(int(ack.get("recv", 0))):
            await link.send(frame)
        return link

    async def _reconnect(self, generation: int) -> bool:
        """Re-establish the session; False means the link is dead."""
        async with self._lock:
            if self._closed:
                return False
            if self._generation != generation:
                # Another coroutine already ran the reconnect episode.
                return self._inner is not None
            if self._inner is not None:
                self._inner.kill()
                self._inner = None
            self._generation += 1
            if self._finishing:
                return False
            deadline = time.monotonic() + self.policy.deadline
            attempt = 0
            while not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    link = await asyncio.wait_for(
                        self._resume_once(), timeout=remaining
                    )
                except _SessionLost:
                    break
                except (OSError, ConnectionError, asyncio.TimeoutError,
                        ReproError):
                    delay = min(
                        self.policy.delay(attempt, self.rng),
                        max(0.0, deadline - time.monotonic()),
                    )
                    attempt += 1
                    if delay > 0:
                        await asyncio.sleep(delay)
                    continue
                self._inner = link
                self._inner_dropped = 0
                self.resumes += 1
                if self.on_resume is not None:
                    self.on_resume()
                return True
            return False

    async def send(self, frame: dict[str, Any]) -> None:
        wire = self.session.stamp(frame)
        while True:
            link, generation = self._inner, self._generation
            if link is None or self._closed:
                raise ConnectionResetError(
                    f"worker link for shard {self.shard} is down"
                )
            try:
                await link.send(wire)
                return
            except (OSError, ConnectionError):
                if not await self._reconnect(generation):
                    raise
                # A successful resume already replayed the buffer (this
                # frame included); the loop re-sends it only so a frame
                # stamped *after* the resume replay is never skipped —
                # the receiver drops the duplicate by its number.

    async def read(self) -> dict[str, Any] | None:
        while True:
            link, generation = self._inner, self._generation
            if link is None or self._closed:
                return None
            frame = await link.read()
            if link.frames_dropped != self._inner_dropped:
                self.frames_dropped += link.frames_dropped - self._inner_dropped
                self._inner_dropped = link.frames_dropped
            if frame is None:
                if self._closed or self._finishing:
                    return None
                if not await self._reconnect(generation):
                    return None
                continue
            verdict = self.session.receive(frame)
            if verdict == "duplicate":
                continue
            if verdict == "gap":
                try:
                    await link.send(self.session.rewind_frame())
                except (OSError, ConnectionError):
                    pass  # the reconnect path will replay instead
                continue
            if frame.get("op") == "rewind":
                for replay in self.session.replay_after(int(frame["have"])):
                    try:
                        await link.send(replay)
                    except (OSError, ConnectionError):
                        break
                continue
            return frame

    def kill(self) -> None:
        self._closed = True
        if self._inner is not None:
            self._inner.kill()

    def close_input(self) -> None:
        self._finishing = True
        if self._inner is not None:
            self._inner.close_input()

    async def wait(self, timeout: float = 10.0) -> None:
        if self._inner is not None:
            await self._inner.wait(timeout=timeout)


def resolve_transport(
    transport: "str | WorkerTransport",
    workers: tuple[str, ...] | None = None,
    *,
    codec: str = "auto",
    retry_policy: RetryPolicy | None = None,
    session_grace: float | None = None,
    seed: int = 0,
) -> WorkerTransport:
    """Normalize a transport argument (name, instance, or ``"auto"``)."""
    if isinstance(transport, WorkerTransport):
        return transport
    if transport == "auto":
        transport = "tcp" if workers else "subprocess"
    if transport == "subprocess":
        return SubprocessTransport()
    if transport == "tcp":
        if not workers:
            raise ReproError(
                "tcp transport needs workers=('host:port', ...) endpoints"
            )
        return TcpTransport(
            tuple(workers),
            codec=codec,
            retry_policy=retry_policy,
            session_grace=session_grace,
            seed=seed,
        )
    raise ReproError(
        f"unknown transport {transport!r}; expected subprocess, tcp, or auto"
    )
