"""Sharded asyncio serving runtime over the detection stack.

``repro.serve`` turns the single-threaded detector into a concurrent
service: an :class:`~repro.serve.router.EventRouter` hash-partitions
rules across N :class:`~repro.serve.shard.DetectionShard` workers, each
batching incoming events on ``g_g`` granule boundaries (safe by
Def 4.4) before feeding the existing engine.  See ``docs/serving.md``.

:mod:`repro.serve.cluster` adds the fault-tolerant tier: every shard a
supervised worker *process*, with write-ahead logging
(:mod:`repro.serve.wal`), heartbeat failure detection
(:mod:`repro.serve.heartbeat`), periodic checkpoints, and automatic
checkpoint+replay failover that preserves detection multisets.

The wire formats live behind the versioned :class:`~repro.serve.
protocol.Codec` API: version 0 is one-JSON-object-per-line
(:class:`~repro.serve.protocol.JsonlCodec`), version 1 packs whole
granule batches into length-prefixed CRC-checked binary frames
(:class:`~repro.serve.protocol.BinaryCodec`); transports negotiate per
connection and fall back to JSONL.  :class:`~repro.serve.config.
ServeConfig` is the single configuration entry point across
:class:`~repro.serve.runtime.ServingRuntime`,
:class:`~repro.serve.cluster.ClusterSupervisor`, and the ``repro
serve`` CLI.

The cluster is *elastic*: workers run behind a
:class:`~repro.serve.transport.WorkerTransport` — local subprocesses
or remote ``repro serve-worker --listen`` TCP listeners — and
:meth:`~repro.serve.cluster.ClusterSupervisor.scale` re-hashes rules
onto a new worker count at a granule boundary, migrating detector
state through checkpoint handoffs.  The
:class:`~repro.serve.admin.ClusterAdmin` surface (``scale`` /
``revive`` / ``drain`` / ``status``) is shared by the supervisor, the
in-process :class:`~repro.serve.cluster.LocalFailoverCluster`, and the
CLI.

Detection itself has two modes: exact (the default — detections are
signalled only once stabilization evidence is complete) and
*approximate* anytime detection (``ServeConfig(approximate=True)`` /
``repro serve --approximate``), where each shard runs an
:class:`~repro.detection.approximate.ApproximateStabilizer` and streams
TENTATIVE / CONFIRMED / RETRACTED verdicts; see ``docs/approximate.md``.
"""

from repro.serve.admin import ClusterAdmin, ClusterStatus
from repro.serve.cluster import (
    CheckpointStore,
    ClusterSupervisor,
    DetectionLedger,
    FaultInjector,
    FaultPlan,
    LocalFailoverCluster,
    ShardReplica,
    ShardUnavailable,
    TaggedDetection,
    cluster_serve_stdin,
    replay_with_failover,
    run_worker,
    serve_worker_listener,
)
from repro.serve.config import ServeConfig
from repro.serve.netfault import (
    FaultyLink,
    NetFaultPlan,
    NetFaultReport,
    TcpFaultProxy,
    install_fault_filter,
    replay_with_netfault,
)
from repro.serve.rebalance import ScaleReport, graft_detector
from repro.serve.heartbeat import Backoff, HeartbeatMonitor
from repro.serve.session import (
    DEFAULT_SESSION_GRACE,
    RetryPolicy,
    SessionHalf,
    new_session_id,
)
from repro.serve.protocol import (
    BINARY_VERSION,
    CODEC_NAMES,
    CONTROL_OPS,
    MAX_LINE_BYTES,
    BinaryCodec,
    Codec,
    JsonlCodec,
    ServeEvent,
    StreamDecoder,
    StreamUnit,
    batch_occurrences,
    choose_codec,
    detection_to_json,
    detection_to_line,
    event_to_line,
    frame_to_line,
    get_codec,
    hello_ack_line,
    hello_line,
    parse_event_line,
    parse_frame,
    parse_hello,
    parse_hello_tenant,
    resolve_codec,
)
from repro.serve.router import EventRouter, shard_of
from repro.serve.runtime import ServingRuntime, serve_events
from repro.serve.tenancy import (
    EnvelopeStore,
    EventEnvelope,
    MultiTenantCluster,
    TenantQuota,
    TokenBucket,
    namespace_event,
    namespace_expression,
    namespaced_type,
    qualified_rule,
    replay_store,
    replay_tenant,
    serve_tenants,
    split_rule,
    tenant_salt,
    validate_tenant,
)
from repro.serve.server import (
    DetectionBroadcast,
    serve_stdin,
    serve_tcp,
    wire_rules,
)
from repro.serve.shard import DetectionShard
from repro.serve.transport import (
    ResumableTcpLink,
    SubprocessTransport,
    TcpTransport,
    WorkerLink,
    WorkerTransport,
    resolve_transport,
)
from repro.serve.wal import KIND_ADVANCE, KIND_EVENT, ShardWAL, WalEntry

__all__ = [
    "BINARY_VERSION",
    "Backoff",
    "BinaryCodec",
    "CODEC_NAMES",
    "CONTROL_OPS",
    "CheckpointStore",
    "Codec",
    "ClusterAdmin",
    "ClusterStatus",
    "ClusterSupervisor",
    "DEFAULT_SESSION_GRACE",
    "DetectionBroadcast",
    "DetectionLedger",
    "DetectionShard",
    "EnvelopeStore",
    "EventEnvelope",
    "EventRouter",
    "FaultInjector",
    "FaultPlan",
    "FaultyLink",
    "HeartbeatMonitor",
    "JsonlCodec",
    "KIND_ADVANCE",
    "KIND_EVENT",
    "LocalFailoverCluster",
    "MAX_LINE_BYTES",
    "MultiTenantCluster",
    "NetFaultPlan",
    "NetFaultReport",
    "ResumableTcpLink",
    "RetryPolicy",
    "ScaleReport",
    "ServeConfig",
    "SessionHalf",
    "ServeEvent",
    "ServingRuntime",
    "ShardReplica",
    "ShardUnavailable",
    "ShardWAL",
    "StreamDecoder",
    "StreamUnit",
    "SubprocessTransport",
    "TaggedDetection",
    "TcpFaultProxy",
    "TcpTransport",
    "TenantQuota",
    "TokenBucket",
    "WalEntry",
    "WorkerLink",
    "WorkerTransport",
    "batch_occurrences",
    "choose_codec",
    "cluster_serve_stdin",
    "detection_to_json",
    "detection_to_line",
    "event_to_line",
    "frame_to_line",
    "get_codec",
    "graft_detector",
    "hello_ack_line",
    "hello_line",
    "install_fault_filter",
    "namespace_event",
    "namespace_expression",
    "namespaced_type",
    "new_session_id",
    "parse_event_line",
    "parse_frame",
    "parse_hello",
    "parse_hello_tenant",
    "qualified_rule",
    "replay_store",
    "replay_tenant",
    "replay_with_failover",
    "replay_with_netfault",
    "resolve_codec",
    "resolve_transport",
    "run_worker",
    "serve_events",
    "serve_stdin",
    "serve_tcp",
    "serve_tenants",
    "serve_worker_listener",
    "shard_of",
    "split_rule",
    "tenant_salt",
    "validate_tenant",
    "wire_rules",
]
