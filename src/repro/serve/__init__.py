"""Sharded asyncio serving runtime over the detection stack.

``repro.serve`` turns the single-threaded detector into a concurrent
service: an :class:`~repro.serve.router.EventRouter` hash-partitions
rules across N :class:`~repro.serve.shard.DetectionShard` workers, each
batching incoming events on ``g_g`` granule boundaries (safe by
Def 4.4) before feeding the existing engine.  See ``docs/serving.md``.

:mod:`repro.serve.cluster` adds the fault-tolerant tier: every shard a
supervised worker *process*, with write-ahead logging
(:mod:`repro.serve.wal`), heartbeat failure detection
(:mod:`repro.serve.heartbeat`), periodic checkpoints, and automatic
checkpoint+replay failover that preserves detection multisets.
"""

from repro.serve.cluster import (
    CheckpointStore,
    ClusterSupervisor,
    DetectionLedger,
    FaultInjector,
    FaultPlan,
    LocalFailoverCluster,
    ShardReplica,
    ShardUnavailable,
    cluster_serve_stdin,
    replay_with_failover,
    run_worker,
)
from repro.serve.heartbeat import Backoff, HeartbeatMonitor
from repro.serve.protocol import (
    CONTROL_OPS,
    MAX_LINE_BYTES,
    ServeEvent,
    detection_to_json,
    detection_to_line,
    event_to_line,
    frame_to_line,
    parse_event_line,
    parse_frame,
)
from repro.serve.router import EventRouter, shard_of
from repro.serve.runtime import ServingRuntime, serve_events
from repro.serve.server import (
    DetectionBroadcast,
    serve_stdin,
    serve_tcp,
    wire_rules,
)
from repro.serve.shard import DetectionShard
from repro.serve.wal import KIND_ADVANCE, KIND_EVENT, ShardWAL, WalEntry

__all__ = [
    "Backoff",
    "CONTROL_OPS",
    "CheckpointStore",
    "ClusterSupervisor",
    "DetectionBroadcast",
    "DetectionLedger",
    "DetectionShard",
    "EventRouter",
    "FaultInjector",
    "FaultPlan",
    "HeartbeatMonitor",
    "KIND_ADVANCE",
    "KIND_EVENT",
    "LocalFailoverCluster",
    "MAX_LINE_BYTES",
    "ServeEvent",
    "ServingRuntime",
    "ShardReplica",
    "ShardUnavailable",
    "ShardWAL",
    "WalEntry",
    "cluster_serve_stdin",
    "detection_to_json",
    "detection_to_line",
    "event_to_line",
    "frame_to_line",
    "parse_event_line",
    "parse_frame",
    "replay_with_failover",
    "run_worker",
    "serve_events",
    "serve_stdin",
    "serve_tcp",
    "shard_of",
    "wire_rules",
]
