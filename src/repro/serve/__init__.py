"""Sharded asyncio serving runtime over the detection stack.

``repro.serve`` turns the single-threaded detector into a concurrent
service: an :class:`~repro.serve.router.EventRouter` hash-partitions
rules across N :class:`~repro.serve.shard.DetectionShard` workers, each
batching incoming events on ``g_g`` granule boundaries (safe by
Def 4.4) before feeding the existing engine.  See ``docs/serving.md``.
"""

from repro.serve.protocol import (
    ServeEvent,
    detection_to_json,
    detection_to_line,
    event_to_line,
    parse_event_line,
)
from repro.serve.router import EventRouter, shard_of
from repro.serve.runtime import ServingRuntime, serve_events
from repro.serve.server import (
    DetectionBroadcast,
    serve_stdin,
    serve_tcp,
    wire_rules,
)
from repro.serve.shard import DetectionShard

__all__ = [
    "DetectionBroadcast",
    "DetectionShard",
    "EventRouter",
    "ServeEvent",
    "ServingRuntime",
    "detection_to_json",
    "detection_to_line",
    "event_to_line",
    "parse_event_line",
    "serve_events",
    "serve_stdin",
    "serve_tcp",
    "shard_of",
    "wire_rules",
]
