"""The serving runtime: router + shards behind one async facade.

:class:`ServingRuntime` is the object the CLI, the bench harness, and
the conformance runner all drive.  Lifecycle::

    runtime = ServingRuntime(shards=4, timer_ratio=10)
    runtime.register("buy ; sell", name="round_trip")
    async with runtime:                      # starts the shard workers
        pressured = await runtime.ingest(event)
        ...
    detections = runtime.detections_of("round_trip")

Registration hash-partitions each rule onto exactly one shard (see
:mod:`repro.serve.router`), then rebinds the router's subscription map
from the shards' compiled event graphs.  ``ingest`` fans one stamped
event out to every subscribing shard; the return value is the
backpressure signal — ``True`` once any target shard's queue has passed
its high-water mark, telling a well-behaved producer to slow down
(ingest itself never drops; a full queue suspends the producer).

Because every rule lives on one shard and a shard receives *all* events
its rules subscribe to in submission order, the multiset of detections
is invariant in the shard count — the property the conformance runner's
``sharding`` check sweeps shard counts and salts to verify.

:func:`serve_events` is the synchronous convenience wrapper: one call
runs a whole stream through a fresh runtime and returns it drained.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.contexts.policies import Context
from repro.detection.approximate import Verdict, VerdictDetection
from repro.detection.detector import Detection
from repro.errors import ReproError
from repro.events.expressions import EventExpression
from repro.events.occurrences import EventOccurrence
from repro.obs.instrument import Instrumentation, resolve
from repro.serve.config import UNSET as _UNSET
from repro.serve.config import ServeConfig
from repro.serve.config import resolve_config as _resolve_config
from repro.serve.protocol import ServeEvent
from repro.serve.router import EventRouter
from repro.serve.shard import DetectionShard


class ServingRuntime:
    """N detection shards behind an :class:`EventRouter`.

    Configure through ``config=ServeConfig(...)``; the individual
    keyword arguments are deprecated aliases kept for one release
    (mixing the two styles raises ``TypeError``).  The fields that
    matter here are ``shards``, ``salt``, ``timer_ratio``, ``capacity``
    and ``high_water`` (per shard); the transport fields
    (``max_line_bytes``, ``codec``) are read by the servers in
    :mod:`repro.serve.server`.
    """

    def __init__(
        self,
        shards: int = _UNSET,
        *,
        salt: int = _UNSET,
        timer_ratio: int = _UNSET,
        capacity: int = _UNSET,
        high_water: int | None = _UNSET,
        config: ServeConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("shards", shards),
                ("salt", salt),
                ("timer_ratio", timer_ratio),
                ("capacity", capacity),
                ("high_water", high_water),
            )
            if value is not _UNSET
        }
        config = _resolve_config("ServingRuntime", config, legacy)
        self.config = config
        self.router = EventRouter(config.shards, salt=config.salt)
        self.obs = resolve(instrumentation)
        self.shards: list[DetectionShard] = [
            DetectionShard(
                index,
                capacity=config.capacity,
                high_water=config.high_water,
                timer_ratio=config.timer_ratio,
                approximate=config.approximate,
                instrumentation=instrumentation,
            )
            for index in range(config.shards)
        ]
        self.events_ingested = 0
        self.events_unrouted = 0

    # --- registration -----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
        callback: Callable[[Detection], None] | None = None,
    ) -> int:
        """Register a rule on its hash-assigned shard; returns the index.

        ``callback`` fires synchronously inside the owning shard's
        worker on each detection — the streaming hook the JSONL servers
        emit through.
        """
        index = self.router.assign(name)
        self.shards[index].register(
            expression, name=name, context=context, callback=callback
        )
        self._bind()
        return index

    def _bind(self) -> None:
        self.router.bind(
            {shard.index: shard.subscribed_types() for shard in self.shards}
        )

    def rule_names(self) -> list[str]:
        """Every registered rule name, sorted."""
        return sorted(self.router.assignments)

    # --- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start all shard workers (requires a running event loop)."""
        for shard in self.shards:
            shard.start()

    async def __aenter__(self) -> "ServingRuntime":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    async def ingest(self, event: ServeEvent) -> bool:
        """Route one event to its subscribing shards.

        Returns the backpressure signal: ``True`` if any target shard is
        past its high-water mark after the enqueue.  Events no rule
        subscribes to are counted and dropped — the router knows they
        cannot contribute to any detection.
        """
        targets = self.router.route(event.event_type)
        if not targets:
            self.events_unrouted += 1
            return False
        self.events_ingested += 1
        pressured = False
        for index in targets:
            shard = self.shards[index]
            await shard.put(event)
            pressured = shard.under_pressure() or pressured
        if self.obs.enabled:
            self.obs.counter("serve.ingested").inc()
            if pressured:
                self.obs.counter("serve.pressure").inc()
        return pressured

    async def ingest_batch(self, events: Sequence[ServeEvent]) -> bool:
        """Route a whole batch (typically one decoded granule frame).

        Routing decisions are memoized per event type across the batch
        and each shard receives its slice as *one* queue item, so a
        granule of N events costs a handful of queue operations instead
        of N router lookups and N enqueues.  Ordering is preserved:
        events land in each shard's slice in submission order, and
        whole-granule batches cannot cross a granule boundary out of
        order (Definition 4.4 makes intra-granule order immaterial for
        cross-site comparisons).
        """
        route = self.router.route
        routes: dict[str, tuple[int, ...]] = {}
        per_shard: dict[int, list[ServeEvent]] = {}
        ingested = 0
        unrouted = 0
        for event in events:
            event_type = event.event_type
            targets = routes.get(event_type)
            if targets is None:
                targets = tuple(route(event_type))
                routes[event_type] = targets
            if not targets:
                unrouted += 1
                continue
            ingested += 1
            for index in targets:
                slice_ = per_shard.get(index)
                if slice_ is None:
                    per_shard[index] = [event]
                else:
                    slice_.append(event)
        self.events_ingested += ingested
        self.events_unrouted += unrouted
        pressured = False
        for index, slice_ in per_shard.items():
            shard = self.shards[index]
            await shard.put_batch(slice_)
            pressured = shard.under_pressure() or pressured
        if self.obs.enabled and ingested:
            self.obs.counter("serve.ingested").inc(ingested)
            if pressured:
                self.obs.counter("serve.pressure").inc()
        return pressured

    async def drain(self, horizon: int | None = None) -> None:
        """Wait for all queues to empty and all open batches to flush.

        With ``horizon`` the engine clocks then advance to that granule,
        firing any temporal-operator timers due before it — the serving
        analogue of the simulator pumping time past the last event.
        """
        await asyncio.gather(*(shard.drain() for shard in self.shards))
        if horizon is not None:
            for shard in self.shards:
                shard.advance_time(horizon)

    async def stop(self, horizon: int | None = None) -> None:
        """Graceful shutdown: drain, optionally advance, stop workers."""
        await self.drain(horizon)
        await asyncio.gather(*(shard.stop() for shard in self.shards))

    # --- results ----------------------------------------------------------

    def detections(self) -> list[tuple[int, Detection]]:
        """All ``(shard index, detection)`` pairs in per-shard order."""
        merged: list[tuple[int, Detection]] = []
        for shard in self.shards:
            merged.extend(shard.detections)
        return merged

    def detections_of(self, name: str) -> list[EventOccurrence]:
        """Occurrences of one rule (it lives on exactly one shard)."""
        index = self.router.assignments.get(name)
        if index is None:
            raise ReproError(f"no rule named {name!r} is registered")
        return self.shards[index].detections_of(name)

    def depths(self) -> list[int]:
        """Current queue depth per shard (an obs gauge, not a guarantee)."""
        return [shard.depth for shard in self.shards]

    # --- approximate-mode results -----------------------------------------

    def verdicts(self) -> list[tuple[int, VerdictDetection]]:
        """All ``(shard index, verdict)`` pairs in per-shard order.

        Empty unless the runtime was configured with
        ``ServeConfig(approximate=True)`` — exact shards emit plain
        detections, not verdicts.
        """
        merged: list[tuple[int, VerdictDetection]] = []
        for shard in self.shards:
            merged.extend(shard.verdicts)
        return merged

    def verdicts_of(self, name: str) -> list[VerdictDetection]:
        """One rule's verdict stream, in emission order."""
        index = self.router.assignments.get(name)
        if index is None:
            raise ReproError(f"no rule named {name!r} is registered")
        return [
            verdict
            for _, verdict in self.shards[index].verdicts
            if verdict.name == name
        ]

    def tentative_of(self, name: str) -> list[VerdictDetection]:
        """One rule's eager (anytime) emissions."""
        return [
            v for v in self.verdicts_of(name)
            if v.verdict is Verdict.TENTATIVE
        ]

    def unresolved(self) -> int:
        """Tentatives not yet confirmed or retracted, across all shards.

        Zero after a clean ``stop()`` — the shutdown flush resolves
        every straggler.
        """
        return sum(
            shard.stabilizer.unresolved()
            for shard in self.shards
            if shard.stabilizer is not None
        )

    # --- crash recovery ---------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot every shard; take only while workers are idle."""
        return {
            "shards": len(self.shards),
            "salt": self.router.salt,
            "rules": dict(self.router.assignments),
            "states": [shard.checkpoint() for shard in self.shards],
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Load a runtime checkpoint; rules must already be registered.

        The shard count and salt must match the checkpoint — rule
        placement is derived from them, so a mismatch would restore
        state into detectors that do not own those rules — and every
        rule recorded in the checkpoint must already be registered
        (registrations are code, not state).  *All* mismatches are
        collected and reported in one error, so an operator fixes a bad
        restore in one round trip instead of one failure at a time.
        """
        problems: list[str] = []
        if int(state["shards"]) != len(self.shards):
            problems.append(
                f"checkpoint has {state['shards']} shard(s), "
                f"runtime has {len(self.shards)}"
            )
        if int(state["salt"]) != self.router.salt:
            problems.append(
                f"checkpoint salt {state['salt']} != runtime salt "
                f"{self.router.salt}"
            )
        missing = sorted(
            set(state.get("rules", ())) - set(self.router.assignments)
        )
        if missing:
            problems.append(
                "checkpoint rule(s) not registered on this runtime: "
                + ", ".join(repr(name) for name in missing)
            )
        if problems:
            raise ReproError(
                f"cannot restore checkpoint ({len(problems)} mismatch(es)): "
                + "; ".join(problems)
            )
        for shard, shard_state in zip(self.shards, state["states"]):
            shard.restore(shard_state)


def serve_events(
    rules: Mapping[str, EventExpression | str] | Sequence[tuple[str, Any]],
    events: Iterable[ServeEvent],
    *,
    shards: int = _UNSET,
    salt: int = _UNSET,
    timer_ratio: int = _UNSET,
    capacity: int = _UNSET,
    config: ServeConfig | None = None,
    context: Context = Context.UNRESTRICTED,
    horizon: int | None = None,
    batch: bool = True,
    instrumentation: Instrumentation | None = None,
) -> ServingRuntime:
    """Run a finite event stream through a fresh runtime, synchronously.

    Registers ``rules`` (a name -> expression mapping or pair sequence),
    ingests ``events`` in order, drains to ``horizon``, stops, and
    returns the runtime for inspection.  This is the entry point the
    conformance runner and the unit tests compare across shard counts.

    ``shards``/``salt``/``timer_ratio``/``capacity`` remain as
    *convenience* keywords (not deprecated — this wrapper exists to be
    terse); pass ``config=ServeConfig(...)`` for anything beyond them,
    but not both.  ``batch`` selects granule-batched ingest
    (:meth:`ServingRuntime.ingest_batch` per granule run) over the
    per-event path; the detection multiset is identical either way.
    """
    legacy = {
        name: value
        for name, value in (
            ("shards", shards),
            ("salt", salt),
            ("timer_ratio", timer_ratio),
            ("capacity", capacity),
        )
        if value is not _UNSET
    }
    config = _resolve_config("serve_events", config, legacy, warn=False)
    runtime = ServingRuntime(config=config, instrumentation=instrumentation)
    pairs = rules.items() if isinstance(rules, Mapping) else rules
    for name, expression in pairs:
        runtime.register(expression, name=name, context=context)

    async def _run() -> None:
        async with runtime:
            if batch:
                # Granule runs become batches: consecutive events sharing
                # one global granule travel as one ingest_batch call.
                run: list[ServeEvent] = []
                granule: int | None = None
                for event in events:
                    if granule is not None and event.granule != granule:
                        await runtime.ingest_batch(run)
                        run = []
                    granule = event.granule
                    run.append(event)
                if run:
                    await runtime.ingest_batch(run)
            else:
                for event in events:
                    await runtime.ingest(event)
            await runtime.drain(horizon)

    asyncio.run(_run())
    return runtime
