"""Hash-partitioning of rules to shards and event routing.

The serving runtime scales out the way partial-synchrony monitors do
(Henry et al.; Bonakdarpour et al.): by *rule*.  Every registered
composite event lives on exactly one shard, chosen by a stable hash of
its name, so detection state never crosses a shard boundary and the
multiset of detections is invariant in the shard count.

An incoming primitive event is then routed to every shard whose rules
subscribe to its event type.  The subscription map is not declared — it
is *introspected* from each shard's compiled
:class:`~repro.detection.graph.EventGraph` (the primitive leaves that
actually have subscribers), so routing can never drift from what the
detectors consume.

Hashing uses CRC-32, not Python's builtin ``hash``: assignments must be
stable across processes and interpreter runs (``PYTHONHASHSEED``), or a
restarted shard could restore a checkpoint for rules it no longer owns.
The optional ``salt`` perturbs the assignment deterministically — the
conformance runner's shuffled-shard mode sweeps it to prove detections
do not depend on which shard a rule happens to land on.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Mapping

from repro.errors import ReproError


def shard_of(rule_name: str, shards: int, salt: int = 0) -> int:
    """The shard index owning ``rule_name`` (stable across processes)."""
    if shards <= 0:
        raise ReproError(f"shard count must be positive, got {shards}")
    digest = zlib.crc32(f"{salt}:{rule_name}".encode("utf-8"))
    return digest % shards


class EventRouter:
    """Routes primitive events to the shards whose rules consume them.

    Built empty; :meth:`assign` places rules, and :meth:`bind` installs
    the introspected ``event type -> shard set`` subscription map once
    the shards have compiled their detection graphs.

    A router carries a shard-map **epoch** (0 for a fresh cluster).
    Re-sharding never mutates a live router — :meth:`rehash` builds a
    complete successor with the epoch bumped, and the cluster swaps it
    in atomically at a granule boundary.  In-flight events therefore
    route under exactly one epoch: whichever router object their ingest
    read, never a half-updated map.
    """

    def __init__(self, shards: int, salt: int = 0, *, epoch: int = 0) -> None:
        if shards <= 0:
            raise ReproError(f"shard count must be positive, got {shards}")
        if epoch < 0:
            raise ReproError(f"shard-map epoch must be non-negative, got {epoch}")
        self.shards = shards
        self.salt = salt
        self.epoch = epoch
        self.assignments: dict[str, int] = {}
        self._salts: dict[str, int] = {}
        self._subscriptions: dict[str, tuple[int, ...]] = {}

    def assign(self, rule_name: str, *, salt: int | None = None) -> int:
        """Place one rule; idempotent, returns its owning shard index.

        ``salt`` overrides the router salt for this rule only — the
        multi-tenant tier hashes each tenant's rules under the
        tenant-folded salt (:func:`repro.serve.tenancy.tenant_salt`) so
        tenants spread across the shards independently.  The override
        is remembered: :meth:`rehash` re-places the rule under the same
        effective salt on the successor.
        """
        existing = self.assignments.get(rule_name)
        if existing is not None:
            return existing
        if salt is not None:
            self._salts[rule_name] = salt
        shard = shard_of(
            rule_name, self.shards, self.salt if salt is None else salt
        )
        self.assignments[rule_name] = shard
        return shard

    def salt_of(self, rule_name: str) -> int:
        """The effective salt ``rule_name`` hashes under."""
        return self._salts.get(rule_name, self.salt)

    def bind(self, subscriptions: Mapping[int, Iterable[str]]) -> None:
        """Install the subscription map: shard index -> subscribed types.

        Callers pass each shard's introspected primitive leaf types
        (:meth:`~repro.detection.graph.EventGraph.subscribed_event_types`).
        Re-binding replaces the map — registration is append-only, so the
        newest introspection is always a superset of the one it replaces.
        """
        by_type: dict[str, set[int]] = {}
        for shard, types in subscriptions.items():
            if not 0 <= shard < self.shards:
                raise ReproError(f"shard index {shard} out of range")
            for event_type in types:
                by_type.setdefault(event_type, set()).add(shard)
        self._subscriptions = {
            event_type: tuple(sorted(shards))
            for event_type, shards in by_type.items()
        }

    def route(self, event_type: str) -> tuple[int, ...]:
        """The shards subscribed to ``event_type`` (empty if nobody is)."""
        return self._subscriptions.get(event_type, ())

    def subscribed_types(self) -> frozenset[str]:
        """Every event type at least one shard consumes."""
        return frozenset(self._subscriptions)

    def rules_of(self, shard: int) -> list[str]:
        """The rule names owned by one shard, sorted."""
        return sorted(
            name for name, owner in self.assignments.items() if owner == shard
        )

    def rehash(self, shards: int, salt: int | None = None) -> "EventRouter":
        """A successor router: every known rule re-hashed onto ``shards``.

        The successor's epoch is this router's plus one; its
        subscription map is empty until the caller re-binds it from the
        new shard set's compiled graphs.  ``self`` is left untouched —
        the swap point is the caller's to choose (a granule boundary).
        """
        successor = EventRouter(
            shards,
            salt=self.salt if salt is None else salt,
            epoch=self.epoch + 1,
        )
        for name in sorted(self.assignments):
            successor.assign(name, salt=self._salts.get(name))
        return successor
