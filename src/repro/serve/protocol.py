"""Wire format of the serving runtime.

The serving runtime sits *downstream* of stamping: clients submit
primitive events that already carry their ``(site, global, local)``
timestamp triple (in a deployment, each site stamps with its own
synchronized clock before forwarding — exactly the paper's Section 4
premise).  One :class:`ServeEvent` is one JSON object, one per line on
the stdin/TCP transports::

    {"type": "buy", "site": "ny", "global": 12, "local": 124,
     "parameters": {"qty": 10}}

Detections travel back the same way (see :func:`detection_to_json`):
the registered rule name, the detecting shard, and the composite
max-set timestamp as a list of triples.

The multi-process cluster (:mod:`repro.serve.cluster`) layers *control
frames* over the same JSONL transport: every line between the
supervisor and a shard worker process is one JSON object with an
``"op"`` field.  Supervisor -> worker ops are ``register`` / ``restore``
/ ``event`` / ``advance`` / ``checkpoint`` / ``stop``; worker ->
supervisor ops are ``beat`` / ``ack`` / ``detection`` /
``checkpoint_state`` / ``error``.  :func:`frame_to_line` and
:func:`parse_frame` are the codec; an unknown or malformed frame raises
:class:`~repro.errors.ReproError` so both ends can respond with a
structured ``error`` frame instead of dying.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.detection.detector import Detection
from repro.errors import ReproError
from repro.events.occurrences import EventOccurrence
from repro.time.timestamps import PrimitiveTimestamp


@dataclass(frozen=True, slots=True)
class ServeEvent:
    """One stamped primitive event submitted to the serving runtime."""

    event_type: str
    site: str
    global_time: int
    local: int
    parameters: Mapping[str, Any] = field(default_factory=dict)

    @property
    def granule(self) -> int:
        """The global granule the event belongs to (its batch key)."""
        return self.global_time

    def stamp(self) -> PrimitiveTimestamp:
        """The event's primitive timestamp."""
        return PrimitiveTimestamp(self.site, self.global_time, self.local)

    def occurrence(self) -> EventOccurrence:
        """A fresh primitive occurrence carrying this event's stamp."""
        return EventOccurrence.primitive(
            self.event_type, self.stamp(), self.parameters
        )

    @classmethod
    def from_occurrence(cls, occurrence: EventOccurrence) -> "ServeEvent":
        """Project a stamped primitive occurrence into a serve event."""
        stamp = next(iter(occurrence.timestamp))
        return cls(
            event_type=occurrence.event_type,
            site=stamp.site,
            global_time=stamp.global_time,
            local=stamp.local,
            parameters=dict(occurrence.parameters),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.event_type,
            "site": self.site,
            "global": self.global_time,
            "local": self.local,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeEvent":
        try:
            return cls(
                event_type=str(data["type"]),
                site=str(data["site"]),
                global_time=int(data["global"]),
                local=int(data["local"]),
                parameters=dict(data.get("parameters") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(f"malformed serve event {data!r}: {error}") from None


def parse_event_line(line: str) -> ServeEvent:
    """Parse one JSONL input line into a :class:`ServeEvent`."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid JSON event line: {error}") from None
    if not isinstance(data, dict):
        raise ReproError(f"event line must be a JSON object, got {type(data).__name__}")
    return ServeEvent.from_dict(data)


def event_to_line(event: ServeEvent) -> str:
    """Serialize a :class:`ServeEvent` as one JSONL line (no newline)."""
    return json.dumps(event.to_dict(), sort_keys=True)


#: Every op the cluster control channel speaks, in either direction.
CONTROL_OPS = frozenset(
    {
        # supervisor -> worker
        "register", "restore", "event", "advance", "checkpoint", "stop",
        # worker -> supervisor
        "beat", "ack", "detection", "checkpoint_state", "error",
    }
)

#: Default bound on one JSONL line (events and control frames alike).
MAX_LINE_BYTES = 1 << 20


def frame_to_line(op: str, **fields: Any) -> str:
    """Serialize one control frame as a JSONL line (no newline)."""
    if op not in CONTROL_OPS:
        raise ReproError(f"unknown control op {op!r}")
    payload = {"op": op}
    payload.update(fields)
    return json.dumps(payload, sort_keys=True)


def parse_frame(line: str) -> dict[str, Any]:
    """Parse one control-frame line; raises ReproError on malformed input."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid JSON control frame: {error}") from None
    if not isinstance(data, dict):
        raise ReproError(
            f"control frame must be a JSON object, got {type(data).__name__}"
        )
    op = data.get("op")
    if op not in CONTROL_OPS:
        raise ReproError(f"unknown control op {op!r}")
    return data


def detection_to_json(shard: int, detection: Detection) -> dict[str, Any]:
    """The JSON row emitted for one detection."""
    occurrence = detection.occurrence
    return {
        "detection": detection.name,
        "shard": shard,
        "timestamp": [list(t.as_triple()) for t in occurrence.timestamp],
        "parameters": {
            key: value
            for key, value in dict(occurrence.parameters).items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
    }


def detection_to_line(shard: int, detection: Detection) -> str:
    """Serialize one detection as a JSONL output line (no newline)."""
    return json.dumps(detection_to_json(shard, detection), sort_keys=True)
