"""Wire formats of the serving runtime, behind a versioned codec API.

The serving runtime sits *downstream* of stamping: clients submit
primitive events that already carry their ``(site, global, local)``
timestamp triple (in a deployment, each site stamps with its own
synchronized clock before forwarding — exactly the paper's Section 4
premise).  Two codecs speak that contract:

``JsonlCodec`` (version 0)
    One JSON object per line — the human-debuggable fallback every
    transport accepts::

        {"type": "buy", "site": "ny", "global": 12, "local": 124,
         "parameters": {"qty": 10}}

``BinaryCodec`` (version 1)
    Length-prefixed CRC-checked frames, each carrying a whole granule
    batch of events packed with :mod:`struct` behind interned
    event-type/site string tables.  Batching whole granules is safe by
    Definition 4.4 (events inside one ``g_g`` granule are concurrent for
    every cross-site comparison), so a frame is the natural unit of the
    ``2g_g``-restricted order, and the per-event framing overhead of
    JSONL is paid once per granule instead of once per event.

Both implement :class:`Codec` (``encode_batch`` / ``decode_batch`` /
``version`` plus detection, control and WAL framing); transports
negotiate per connection (see :func:`choose_codec`) and fall back to
version-0 JSONL whenever the peer does not offer binary.  A corrupt
binary frame raises :class:`~repro.errors.CodecError` *without*
desyncing the stream: the splitter (:class:`StreamDecoder`) consumes
the frame by its declared length before the checksum is verified.

Detections travel back the same way (see :func:`detection_to_json`):
the registered rule name, the detecting shard, and the composite
max-set timestamp as a list of triples.

The multi-process cluster (:mod:`repro.serve.cluster`) layers *control
frames* over the JSONL transport: every line between the supervisor
and a shard worker process is one JSON object with an ``"op"`` field.
Supervisor -> worker ops are ``register`` / ``restore`` / ``event`` /
``advance`` / ``checkpoint`` / ``stop``; worker -> supervisor ops are
``beat`` / ``ack`` / ``detection`` / ``checkpoint_state`` / ``error``.
:func:`frame_to_line` and :func:`parse_frame` are that codec; an
unknown or malformed frame raises :class:`~repro.errors.ReproError` so
both ends can respond with a structured ``error`` frame instead of
dying.
"""

from __future__ import annotations

import json
import struct
import warnings
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.detection.detector import Detection
from repro.errors import CodecError, ReproError
from repro.events.occurrences import EventOccurrence
from repro.time.timestamps import PrimitiveTimestamp


@dataclass(frozen=True, slots=True)
class ServeEvent:
    """One stamped primitive event submitted to the serving runtime."""

    event_type: str
    site: str
    global_time: int
    local: int
    parameters: Mapping[str, Any] = field(default_factory=dict)

    @property
    def granule(self) -> int:
        """The global granule the event belongs to (its batch key)."""
        return self.global_time

    def stamp(self) -> PrimitiveTimestamp:
        """The event's primitive timestamp."""
        return PrimitiveTimestamp(self.site, self.global_time, self.local)

    def occurrence(self) -> EventOccurrence:
        """A fresh primitive occurrence carrying this event's stamp."""
        return EventOccurrence.primitive(
            self.event_type, self.stamp(), self.parameters
        )

    @classmethod
    def from_occurrence(cls, occurrence: EventOccurrence) -> "ServeEvent":
        """Project a stamped primitive occurrence into a serve event."""
        stamp = next(iter(occurrence.timestamp))
        return cls(
            event_type=occurrence.event_type,
            site=stamp.site,
            global_time=stamp.global_time,
            local=stamp.local,
            parameters=dict(occurrence.parameters),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.event_type,
            "site": self.site,
            "global": self.global_time,
            "local": self.local,
            "parameters": dict(self.parameters),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeEvent":
        try:
            return cls(
                event_type=str(data["type"]),
                site=str(data["site"]),
                global_time=int(data["global"]),
                local=int(data["local"]),
                parameters=dict(data.get("parameters") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(f"malformed serve event {data!r}: {error}") from None


def batch_occurrences(events: Sequence[ServeEvent]) -> list[EventOccurrence]:
    """Stamp and lift a whole batch of events in one pass.

    The vectorized counterpart of calling :meth:`ServeEvent.occurrence`
    per event: all primitive timestamps are constructed by
    :func:`repro.time.kernels.batch_stamps` (one site-id lookup per
    distinct site, the packed-key/hash precomputation inlined), which is
    what makes granule-batch ingest cheaper than N independent calls.
    """
    from repro.time.kernels import batch_stamps

    stamps = batch_stamps(
        (event.site, event.global_time, event.local) for event in events
    )
    primitive = EventOccurrence.primitive
    return [
        primitive(event.event_type, stamp, event.parameters)
        for event, stamp in zip(events, stamps)
    ]


# --- JSONL plumbing (shared by JsonlCodec and the control channel) ----------


def _parse_event_text(line: str) -> ServeEvent:
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid JSON event line: {error}") from None
    if not isinstance(data, dict):
        raise ReproError(f"event line must be a JSON object, got {type(data).__name__}")
    return ServeEvent.from_dict(data)


def _event_to_text(event: ServeEvent) -> str:
    return json.dumps(event.to_dict(), sort_keys=True)


def parse_event_line(line: str) -> ServeEvent:
    """Deprecated: use :meth:`JsonlCodec.decode_batch` instead."""
    warnings.warn(
        "parse_event_line is deprecated; use get_codec('jsonl').decode_batch "
        "(or ServeEvent.from_dict) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _parse_event_text(line)


def event_to_line(event: ServeEvent) -> str:
    """Deprecated: use :meth:`JsonlCodec.encode_batch` instead."""
    warnings.warn(
        "event_to_line is deprecated; use get_codec('jsonl').encode_batch "
        "(or ServeEvent.to_dict) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _event_to_text(event)


#: Every op the cluster control channel speaks, in either direction.
CONTROL_OPS = frozenset(
    {
        # supervisor -> worker
        "register", "restore", "event", "advance", "checkpoint", "stop",
        # supervisor -> worker: connection setup (TCP transports open with
        # a JSONL hello naming the shard and offering codecs; the worker
        # answers hello_ack and both sides switch to the chosen codec) and
        # state migration (handoff asks for a final checkpoint_state at
        # the current applied seq, the last frame before the shard's
        # rules move to a new shard map).
        "hello", "handoff",
        # admin -> server: re-shard the cluster at the next granule
        # boundary (accepted in-stream by the cluster stdin server).
        "scale",
        # worker -> supervisor
        "hello_ack", "beat", "ack", "detection", "checkpoint_state", "error",
        # either direction: session-layer retransmission request — the
        # receiver saw a numbered frame past a gap and asks the sender
        # to resend everything after the ``have`` watermark (see
        # repro.serve.session).
        "rewind",
    }
)

#: Default bound on one JSONL line (events and control frames alike).
MAX_LINE_BYTES = 1 << 20

#: A binary frame may legitimately carry a whole granule batch, so its
#: bound is this factor times the per-line bound of the same transport.
FRAME_LIMIT_FACTOR = 64


def frame_to_line(op: str, **fields: Any) -> str:
    """Serialize one control frame as a JSONL line (no newline)."""
    if op not in CONTROL_OPS:
        raise ReproError(f"unknown control op {op!r}")
    payload = {"op": op}
    payload.update(fields)
    return json.dumps(payload, sort_keys=True)


def parse_frame(line: str) -> dict[str, Any]:
    """Parse one control-frame line; raises ReproError on malformed input."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid JSON control frame: {error}") from None
    if not isinstance(data, dict):
        raise ReproError(
            f"control frame must be a JSON object, got {type(data).__name__}"
        )
    op = data.get("op")
    if op not in CONTROL_OPS:
        raise ReproError(f"unknown control op {op!r}")
    return data


def detection_to_json(
    shard: int,
    detection: Detection,
    *,
    verdict: str | None = None,
    seq: int | None = None,
    ref: int | None = None,
) -> dict[str, Any]:
    """The JSON row emitted for one detection.

    Exact-mode rows carry no verdict keys at all, so version-0 readers
    are unaffected; an approximate-mode row adds ``verdict``
    (``"tentative"`` / ``"confirmed"`` / ``"retracted"``), its emission
    ``seq``, and — on resolutions — the ``ref`` of the tentative row it
    confirms or cancels.
    """
    occurrence = detection.occurrence
    row = {
        "detection": detection.name,
        "shard": shard,
        "timestamp": [list(t.as_triple()) for t in occurrence.timestamp],
        "parameters": {
            key: value
            for key, value in dict(occurrence.parameters).items()
            if isinstance(value, (str, int, float, bool, type(None)))
        },
    }
    if verdict is not None:
        row["verdict"] = verdict
        row["seq"] = seq
        if ref is not None:
            row["ref"] = ref
    return row


def _detection_row_text(row: Mapping[str, Any]) -> str:
    return json.dumps(row, sort_keys=True)


def detection_to_line(shard: int, detection: Detection) -> str:
    """Deprecated: use :func:`detection_to_json` + a codec instead."""
    warnings.warn(
        "detection_to_line is deprecated; use detection_to_json with "
        "get_codec('jsonl').encode_detections instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _detection_row_text(detection_to_json(shard, detection))


# --- the versioned codec API -------------------------------------------------


class Codec(ABC):
    """One wire encoding of the serving protocol, identified by version.

    A codec frames four unit kinds: event *batches* (the ingest hot
    path), detection rows, control frames, and WAL entries.  Encoders
    return ``bytes`` ready for the transport; decoders take exactly one
    framed unit (as produced by :class:`StreamDecoder`) and raise
    :class:`~repro.errors.CodecError` on malformed input.
    """

    #: Short registry name (``"jsonl"`` / ``"binary"``).
    name: str
    #: Protocol version carried on the wire (0 = JSONL, 1 = binary).
    version: int

    @abstractmethod
    def encode_batch(self, events: Sequence[ServeEvent]) -> bytes:
        """Frame a whole (granule) batch of events as one wire unit."""

    @abstractmethod
    def decode_batch(self, data: bytes) -> list[ServeEvent]:
        """Decode one framed unit back into its event batch."""

    @abstractmethod
    def encode_detections(self, rows: Sequence[Mapping[str, Any]]) -> bytes:
        """Frame a batch of detection rows (see :func:`detection_to_json`)."""

    @abstractmethod
    def decode_detections(self, data: bytes) -> list[dict[str, Any]]:
        """Decode one framed unit back into its detection rows."""

    @abstractmethod
    def encode_wal_entry(
        self,
        seq: int,
        kind: str,
        event: ServeEvent | None = None,
        granule: int | None = None,
    ) -> bytes:
        """Frame one WAL entry (``kind`` is ``"event"`` or ``"advance"``)."""

    @abstractmethod
    def decode_wal_entry(self, data: bytes) -> dict[str, Any]:
        """Decode one WAL unit to ``{seq, kind, event?, granule?}``."""

    def frame_limit(self, max_line_bytes: int) -> int:
        """The oversized-unit bound for this codec on a transport whose
        per-line bound is ``max_line_bytes``."""
        return max_line_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} v{self.version}>"


class JsonlCodec(Codec):
    """Version 0: one JSON object per ``\\n``-terminated line."""

    name = "jsonl"
    version = 0

    def encode_batch(self, events: Sequence[ServeEvent]) -> bytes:
        return "".join(
            _event_to_text(event) + "\n" for event in events
        ).encode("utf-8")

    def decode_batch(self, data: bytes) -> list[ServeEvent]:
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"event lines are not UTF-8: {error}") from None
        events = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(_parse_event_text(line))
            except ReproError as error:
                raise CodecError(str(error)) from None
        return events

    def encode_detections(self, rows: Sequence[Mapping[str, Any]]) -> bytes:
        return "".join(
            _detection_row_text(row) + "\n" for row in rows
        ).encode("utf-8")

    def decode_detections(self, data: bytes) -> list[dict[str, Any]]:
        rows = []
        for line in data.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise CodecError(f"invalid detection line: {error}") from None
            if not isinstance(row, dict):
                raise CodecError("detection line must be a JSON object")
            rows.append(row)
        return rows

    def encode_wal_entry(
        self,
        seq: int,
        kind: str,
        event: ServeEvent | None = None,
        granule: int | None = None,
    ) -> bytes:
        if kind == "event":
            payload: dict[str, Any] = {
                "seq": seq, "kind": kind, "event": event.to_dict()
            }
        elif kind == "advance":
            payload = {"seq": seq, "kind": kind, "granule": granule}
        else:
            raise CodecError(f"unknown WAL entry kind {kind!r}")
        return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")

    def decode_wal_entry(self, data: bytes) -> dict[str, Any]:
        try:
            row = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CodecError(f"malformed WAL line: {error}") from None
        if not isinstance(row, dict):
            raise CodecError("WAL line must be a JSON object")
        try:
            kind = str(row["kind"])
            out: dict[str, Any] = {"seq": int(row["seq"]), "kind": kind}
            if kind == "event":
                out["event"] = ServeEvent.from_dict(row["event"])
            elif kind == "advance":
                out["granule"] = int(row["granule"])
            else:
                raise CodecError(f"unknown WAL entry kind {kind!r}")
        except (KeyError, TypeError, ValueError, ReproError) as error:
            raise CodecError(f"malformed WAL entry {row!r}: {error}") from None
        return out


# Binary framing: one 11-byte header, then the payload.
#
#     offset  size  field
#     0       1     magic (0xF5 — never a valid UTF-8 lead byte, so the
#                   splitter can tell a frame from a JSONL line)
#     1       1     protocol version (1)
#     2       1     frame kind (1 events, 2 detections, 3 control, 4 WAL)
#     3       4     payload length N (big-endian u32)
#     7       4     CRC-32 of the payload (big-endian u32)
#     11      N     payload
FRAME_MAGIC = 0xF5
BINARY_VERSION = 1
_HEADER = struct.Struct(">BBBII")
HEADER_BYTES = _HEADER.size

FRAME_EVENTS = 1
FRAME_DETECTIONS = 2
FRAME_CONTROL = 3
FRAME_WAL = 4

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_MAX_U16 = (1 << 16) - 1
_MAX_U64 = (1 << 64) - 1

_FLAG_PARAMS = 1
_FLAG_WIDE = 2


def _json_bytes(value: Any) -> bytes:
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def _loads_or_codec_error(blob: bytes) -> Any:
    try:
        return json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"malformed embedded JSON: {error}") from None


class _Cursor:
    """Bounds-checked reader over one frame payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated frame payload: wanted {count} byte(s) at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def unpack(self, fmt: struct.Struct) -> int:
        return fmt.unpack(self.take(fmt.size))[0]

    def unpack_many(self, code: str, count: int) -> tuple:
        fmt = struct.Struct(f"<{count}{code}")
        return fmt.unpack(self.take(fmt.size))

    def json(self) -> Any:
        length = self.unpack(_U32)
        blob = self.take(length)
        try:
            return json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CodecError(f"malformed embedded JSON: {error}") from None

    def done(self) -> None:
        if self.pos != len(self.data):
            raise CodecError(
                f"{len(self.data) - self.pos} trailing byte(s) in frame payload"
            )


class BinaryCodec(Codec):
    """Version 1: length-prefixed CRC-checked binary frames.

    An event frame packs the whole batch columnarly: interned
    event-type and site tables up front, then per-event u16 table
    indexes and u64 ``(global, local)`` ticks in four bulk
    :mod:`struct` arrays.  Parameters, when any event has them, ride as
    *one* JSON array for the whole batch — so the per-event Python/JSON
    cost of JSONL collapses to a handful of bulk operations per granule.

    Two escape hatches keep the format total: tick values outside u64
    (or negative) flip the batch to a JSON-encoded tick array
    (``_FLAG_WIDE``), and parameter maps must be JSON-serializable with
    string keys — the same contract the JSONL codec imposes.
    """

    name = "binary"
    version = BINARY_VERSION

    # --- framing ---------------------------------------------------------

    @staticmethod
    def frame(kind: int, payload: bytes) -> bytes:
        return _HEADER.pack(
            FRAME_MAGIC, BINARY_VERSION, kind, len(payload),
            zlib.crc32(payload),
        ) + payload

    @staticmethod
    def unframe(data: bytes, expected_kind: int | None = None) -> tuple[int, bytes]:
        """Validate one complete frame; returns ``(kind, payload)``."""
        if len(data) < HEADER_BYTES:
            raise CodecError(
                f"truncated frame header: {len(data)} < {HEADER_BYTES} bytes"
            )
        magic, version, kind, length, crc = _HEADER.unpack_from(data)
        if magic != FRAME_MAGIC:
            raise CodecError(f"bad frame magic 0x{magic:02X}")
        if version != BINARY_VERSION:
            raise CodecError(
                f"unsupported binary protocol version {version} "
                f"(this codec speaks {BINARY_VERSION})"
            )
        payload = data[HEADER_BYTES:]
        if len(payload) != length:
            raise CodecError(
                f"frame length mismatch: header says {length}, "
                f"payload is {len(payload)} byte(s)"
            )
        if zlib.crc32(payload) != crc:
            raise CodecError("frame checksum mismatch (corrupt payload)")
        if expected_kind is not None and kind != expected_kind:
            raise CodecError(
                f"unexpected frame kind {kind} (wanted {expected_kind})"
            )
        return kind, payload

    def frame_limit(self, max_line_bytes: int) -> int:
        return FRAME_LIMIT_FACTOR * max_line_bytes

    # --- event batches ---------------------------------------------------

    # Serialized intern tables recur verbatim across frames (a serving
    # stream cycles through a small set of event types and sites), so
    # the table bytes are memoized per name tuple.  Bounded: a hostile
    # or pathological stream with unbounded distinct name sets clears
    # the cache instead of growing it.
    _TABLE_CACHE: dict[tuple[str, ...], bytes] = {}
    _TABLE_CACHE_MAX = 256

    @classmethod
    def _encode_table(cls, names: tuple[str, ...], what: str) -> bytes:
        cached = cls._TABLE_CACHE.get(names)
        if cached is not None:
            return cached
        parts = [_U32.pack(len(names))]
        for name in names:
            blob = name.encode("utf-8")
            if len(blob) > _MAX_U16:
                raise CodecError(f"{what} name over {_MAX_U16} bytes")
            parts.append(_U16.pack(len(blob)))
            parts.append(blob)
        encoded = b"".join(parts)
        if len(cls._TABLE_CACHE) >= cls._TABLE_CACHE_MAX:
            cls._TABLE_CACHE.clear()
        cls._TABLE_CACHE[names] = encoded
        return encoded

    @staticmethod
    def _encode_events_payload(events: Sequence[ServeEvent]) -> bytes:
        count = len(events)
        types: dict[str, int] = {}
        sites: dict[str, int] = {}
        # dict.setdefault(name, len(table)) evaluates len *before* the
        # insert, so a fresh name gets the next index in one call.
        tset = types.setdefault
        sset = sites.setdefault
        type_idx = [tset(event.event_type, len(types)) for event in events]
        site_idx = [sset(event.site, len(sites)) for event in events]
        globals_ = [event.global_time for event in events]
        locals_ = [event.local for event in events]
        params = [event.parameters for event in events]
        if len(types) > _MAX_U16 or len(sites) > _MAX_U16:
            raise CodecError(
                "batch exceeds intern table capacity "
                f"({len(types)} type(s), {len(sites)} site(s) > {_MAX_U16}); "
                "split it into smaller frames"
            )
        flags = 0
        wide = count > 0 and (
            min(globals_) < 0 or max(globals_) > _MAX_U64
            or min(locals_) < 0 or max(locals_) > _MAX_U64
        )
        if wide:
            flags |= _FLAG_WIDE
        if any(params):
            flags |= _FLAG_PARAMS
        parts = [
            BinaryCodec._encode_table(tuple(types), "event type"),
            BinaryCodec._encode_table(tuple(sites), "site"),
        ]
        # One bulk pack for the whole fixed-width mid-section ('<' means
        # no alignment padding, so this is byte-identical to packing the
        # count, flags, index arrays and tick arrays separately).
        try:
            if wide:
                parts.append(
                    struct.pack(
                        f"<IB{count}H{count}H", count, flags,
                        *type_idx, *site_idx,
                    )
                )
                blob = _json_bytes([globals_, locals_])
                parts.append(_U32.pack(len(blob)))
                parts.append(blob)
            else:
                parts.append(
                    struct.pack(
                        f"<IB{count}H{count}H{count}Q{count}Q", count, flags,
                        *type_idx, *site_idx, *globals_, *locals_,
                    )
                )
        except struct.error as error:
            raise CodecError(f"unpackable event batch: {error}") from None
        if flags & _FLAG_PARAMS:
            try:
                blob = _json_bytes(params)
            except TypeError:
                # Non-dict Mappings are JSON-serializable in spirit but
                # not to the C encoder; copy only on this rare path.
                blob = _json_bytes([dict(p) for p in params])
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @staticmethod
    def _decode_events_payload(cursor: _Cursor) -> list[ServeEvent]:
        # Hot path: raw offset arithmetic over the payload instead of
        # per-field cursor calls, one bulk unpack for the fixed-width
        # mid-section, and direct slot assignment for the events (the
        # CRC-checked frame already vouches for integrity; shape errors
        # below still surface as CodecError).
        data = cursor.data
        pos = cursor.pos
        end = len(data)
        try:
            (n_types,) = _U32.unpack_from(data, pos)
            pos += 4
            types = []
            for _ in range(n_types):
                (length,) = _U16.unpack_from(data, pos)
                pos += 2
                if pos + length > end:
                    raise struct.error
                types.append(data[pos:pos + length].decode("utf-8"))
                pos += length
            (n_sites,) = _U32.unpack_from(data, pos)
            pos += 4
            sites = []
            for _ in range(n_sites):
                (length,) = _U16.unpack_from(data, pos)
                pos += 2
                if pos + length > end:
                    raise struct.error
                sites.append(data[pos:pos + length].decode("utf-8"))
                pos += length
            count, flags = struct.unpack_from("<IB", data, pos)
            pos += 5
            indexes = struct.unpack_from(f"<{2 * count}H", data, pos)
            pos += 4 * count
            type_idx = indexes[:count]
            site_idx = indexes[count:]
            if flags & _FLAG_WIDE:
                (length,) = _U32.unpack_from(data, pos)
                pos += 4
                if pos + length > end:
                    raise struct.error
                ticks = _loads_or_codec_error(data[pos:pos + length])
                pos += length
                if (
                    not isinstance(ticks, list) or len(ticks) != 2
                    or len(ticks[0]) != count or len(ticks[1]) != count
                ):
                    raise CodecError("malformed wide-tick array")
                globals_, locals_ = ticks
            else:
                ticks = struct.unpack_from(f"<{2 * count}Q", data, pos)
                pos += 16 * count
                globals_ = ticks[:count]
                locals_ = ticks[count:]
            if flags & _FLAG_PARAMS:
                (length,) = _U32.unpack_from(data, pos)
                pos += 4
                if pos + length > end:
                    raise struct.error
                params = _loads_or_codec_error(data[pos:pos + length])
                pos += length
                if not isinstance(params, list) or len(params) != count:
                    raise CodecError("malformed batch parameter array")
            else:
                params = None
        except (struct.error, UnicodeDecodeError):
            raise CodecError(
                f"truncated or malformed event frame payload at offset {pos}"
            ) from None
        cursor.pos = pos
        cursor.done()
        new = object.__new__
        set_slot = object.__setattr__
        events: list[ServeEvent] = []
        append = events.append
        try:
            if params is None:
                for i in range(count):
                    event = new(ServeEvent)
                    set_slot(event, "event_type", types[type_idx[i]])
                    set_slot(event, "site", sites[site_idx[i]])
                    set_slot(event, "global_time", globals_[i])
                    set_slot(event, "local", locals_[i])
                    set_slot(event, "parameters", {})
                    append(event)
            else:
                for i in range(count):
                    p = params[i]
                    if type(p) is not dict:
                        raise CodecError(
                            "batch parameter entries must be JSON objects"
                        )
                    event = new(ServeEvent)
                    set_slot(event, "event_type", types[type_idx[i]])
                    set_slot(event, "site", sites[site_idx[i]])
                    set_slot(event, "global_time", globals_[i])
                    set_slot(event, "local", locals_[i])
                    set_slot(event, "parameters", p)
                    append(event)
        except IndexError:
            raise CodecError(
                "event frame references an intern-table index out of range"
            ) from None
        if flags & _FLAG_WIDE:
            # The JSON tick arrays may carry non-integers; the struct
            # path cannot (u64s decode as ints by construction).
            for event in events:
                if (
                    type(event.global_time) is not int
                    or type(event.local) is not int
                ):
                    raise CodecError("malformed wide-tick array")
        return events

    def encode_batch(self, events: Sequence[ServeEvent]) -> bytes:
        return self.frame(FRAME_EVENTS, self._encode_events_payload(events))

    def decode_batch(self, data: bytes) -> list[ServeEvent]:
        _, payload = self.unframe(data, expected_kind=FRAME_EVENTS)
        return self._decode_events_payload(_Cursor(payload))

    # --- detections and control ------------------------------------------

    def encode_detections(self, rows: Sequence[Mapping[str, Any]]) -> bytes:
        return self.frame(FRAME_DETECTIONS, _json_bytes(list(rows)))

    def decode_detections(self, data: bytes) -> list[dict[str, Any]]:
        _, payload = self.unframe(data, expected_kind=FRAME_DETECTIONS)
        cursor = _Cursor(_U32.pack(len(payload)) + payload)
        rows = cursor.json()
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise CodecError("detection frame must carry a JSON row array")
        return rows

    def encode_control(self, frame: Mapping[str, Any]) -> bytes:
        if frame.get("op") not in CONTROL_OPS:
            raise CodecError(f"unknown control op {frame.get('op')!r}")
        return self.frame(FRAME_CONTROL, _json_bytes(dict(frame)))

    def decode_control(self, data: bytes) -> dict[str, Any]:
        _, payload = self.unframe(data, expected_kind=FRAME_CONTROL)
        cursor = _Cursor(_U32.pack(len(payload)) + payload)
        frame = cursor.json()
        if not isinstance(frame, dict) or frame.get("op") not in CONTROL_OPS:
            raise CodecError("malformed binary control frame")
        return frame

    # --- WAL entries ------------------------------------------------------

    _WAL_EVENT = 1
    _WAL_ADVANCE = 2

    def encode_wal_entry(
        self,
        seq: int,
        kind: str,
        event: ServeEvent | None = None,
        granule: int | None = None,
    ) -> bytes:
        if not 0 <= seq <= _MAX_U64:
            raise CodecError(f"WAL seq {seq} outside u64")
        if kind == "event":
            payload = (
                _U8.pack(self._WAL_EVENT)
                + _U64.pack(seq)
                + self._encode_events_payload([event])
            )
        elif kind == "advance":
            if not 0 <= granule <= _MAX_U64:
                raise CodecError(f"WAL advance granule {granule} outside u64")
            payload = (
                _U8.pack(self._WAL_ADVANCE) + _U64.pack(seq)
                + _U64.pack(granule)
            )
        else:
            raise CodecError(f"unknown WAL entry kind {kind!r}")
        return self.frame(FRAME_WAL, payload)

    def decode_wal_entry(self, data: bytes) -> dict[str, Any]:
        _, payload = self.unframe(data, expected_kind=FRAME_WAL)
        cursor = _Cursor(payload)
        entry_kind = cursor.unpack(_U8)
        seq = cursor.unpack(_U64)
        if entry_kind == self._WAL_EVENT:
            events = self._decode_events_payload(cursor)
            if len(events) != 1:
                raise CodecError(
                    f"WAL event entry carries {len(events)} event(s), wanted 1"
                )
            return {"seq": seq, "kind": "event", "event": events[0]}
        if entry_kind == self._WAL_ADVANCE:
            granule = cursor.unpack(_U64)
            cursor.done()
            return {"seq": seq, "kind": "advance", "granule": granule}
        raise CodecError(f"unknown binary WAL entry kind {entry_kind}")


_CODECS: dict[str, Codec] = {
    JsonlCodec.name: JsonlCodec(),
    BinaryCodec.name: BinaryCodec(),
}

#: Registry names, most preferred first (what `auto` negotiates toward).
CODEC_NAMES = ("binary", "jsonl")


def get_codec(name: str) -> Codec:
    """The singleton codec registered under ``name``."""
    codec = _CODECS.get(name)
    if codec is None:
        raise CodecError(
            f"unknown codec {name!r}; registered: {', '.join(sorted(_CODECS))}"
        )
    return codec


def resolve_codec(codec: "str | Codec | None", default: str = "jsonl") -> Codec:
    """Normalize a codec argument (name, instance, or None) to a codec."""
    if codec is None:
        return get_codec(default)
    if isinstance(codec, Codec):
        return codec
    return get_codec(codec)


# --- negotiation -------------------------------------------------------------
#
# Negotiation is itself version 0: the client *may* open with one JSONL
# hello line offering its codecs; the server answers with the codec it
# chose and both sides switch.  A client that never says hello is a
# version-0 client, and a `binary`- or `auto`-configured server still
# accepts its JSONL lines — the fallback is always available, the
# upgrade is opt-in.


def hello_line(
    codecs: Iterable[str] = CODEC_NAMES, *, tenant: str | None = None
) -> str:
    """The client's opening JSONL line offering its codecs, best first.

    ``tenant`` optionally names the tenant namespace the connection's
    events belong to (:mod:`repro.serve.tenancy`); servers that predate
    the field ignore unknown hello keys, so the handshake stays
    version 0 compatible.
    """
    hello: dict[str, Any] = {"codecs": list(codecs)}
    if tenant is not None:
        hello["tenant"] = tenant
    return json.dumps({"hello": hello}, sort_keys=True)


def hello_ack_line(codec: Codec) -> str:
    """The server's JSONL reply naming the codec both sides now speak."""
    return json.dumps(
        {"hello": {"codec": codec.name, "version": codec.version}},
        sort_keys=True,
    )


def parse_hello(data: Mapping[str, Any]) -> list[str] | None:
    """The offered codec names if ``data`` is a client hello, else None."""
    hello = data.get("hello")
    if not isinstance(hello, Mapping):
        return None
    codecs = hello.get("codecs")
    if not isinstance(codecs, (list, tuple)):
        return None
    return [str(name) for name in codecs]


def parse_hello_tenant(data: Mapping[str, Any]) -> str | None:
    """The tenant id a client hello scopes its stream to, if any."""
    hello = data.get("hello")
    if not isinstance(hello, Mapping):
        return None
    tenant = hello.get("tenant")
    if isinstance(tenant, str) and tenant:
        return tenant
    return None


def choose_codec(mode: str, offered: Iterable[str]) -> Codec:
    """The server's pick for a client offering ``offered`` codecs.

    ``mode`` is the server's configuration: ``"jsonl"`` pins version 0,
    ``"binary"`` upgrades clients that offer it (others fall back to
    JSONL — a v1 server never strands a v0 client), ``"auto"`` takes the
    best codec both sides speak, preferring binary.
    """
    if mode == "jsonl":
        return get_codec("jsonl")
    if mode not in ("binary", "auto"):
        raise CodecError(
            f"unknown codec mode {mode!r}; expected jsonl, binary, or auto"
        )
    available = set(offered) & set(_CODECS)
    for name in CODEC_NAMES:
        if name in available:
            return get_codec(name)
    return get_codec("jsonl")


# --- the incremental stream splitter ----------------------------------------


@dataclass(frozen=True, slots=True)
class StreamUnit:
    """One unit split off a byte stream: a line, a frame, or an error.

    ``kind`` is ``"line"`` (a complete JSONL line, newline stripped),
    ``"frame"`` (a complete binary frame, header included), or
    ``"error"`` (an oversized or truncated unit that was discarded —
    the stream itself remains usable).
    """

    kind: str
    payload: bytes = b""
    message: str = ""


class StreamDecoder:
    """Incremental splitter of a mixed JSONL/binary byte stream.

    Feed arbitrary chunks; get back complete :class:`StreamUnit`\\ s.
    The leading byte disambiguates: :data:`FRAME_MAGIC` (0xF5) can
    never start a UTF-8 JSONL line, so frames and lines interleave
    freely on one connection — which is what lets a server accept a
    version-0 client and a version-1 client with the same reader, and
    lets a client upgrade mid-stream after the hello exchange.

    Oversized units are discarded *in bounded memory* (an oversized
    frame is skipped by its declared length without buffering it; an
    oversized line is dropped through its terminating newline) and
    surfaced as one ``"error"`` unit each, so a hostile or broken peer
    cannot wedge the transport.
    """

    def __init__(
        self,
        *,
        max_line_bytes: int = MAX_LINE_BYTES,
        max_frame_bytes: int | None = None,
    ) -> None:
        self.max_line_bytes = max_line_bytes
        self.max_frame_bytes = (
            max_frame_bytes
            if max_frame_bytes is not None
            else get_codec("binary").frame_limit(max_line_bytes)
        )
        self._buffer = b""
        self._skip = 0
        self._discarding_line = False

    def feed(self, data: bytes) -> list[StreamUnit]:
        """Consume one chunk; returns every unit it completed."""
        self._buffer += data
        units: list[StreamUnit] = []
        while True:
            if self._skip:
                dropped = min(self._skip, len(self._buffer))
                self._buffer = self._buffer[dropped:]
                self._skip -= dropped
                if self._skip:
                    break
                continue
            if self._discarding_line:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    self._buffer = b""
                    break
                self._buffer = self._buffer[newline + 1:]
                self._discarding_line = False
                continue
            if not self._buffer:
                break
            if self._buffer[0] == FRAME_MAGIC:
                if len(self._buffer) < HEADER_BYTES:
                    break
                length = _HEADER.unpack_from(self._buffer)[3]
                total = HEADER_BYTES + length
                if total > self.max_frame_bytes:
                    units.append(StreamUnit(
                        "error",
                        message=(
                            f"binary frame of {total} bytes exceeds "
                            f"{self.max_frame_bytes}"
                        ),
                    ))
                    if total <= len(self._buffer):
                        self._buffer = self._buffer[total:]
                    else:
                        self._skip = total - len(self._buffer)
                        self._buffer = b""
                    continue
                if len(self._buffer) < total:
                    break
                frame, self._buffer = (
                    self._buffer[:total], self._buffer[total:]
                )
                units.append(StreamUnit("frame", payload=frame))
                continue
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line, self._buffer = (
                    self._buffer[:newline], self._buffer[newline + 1:]
                )
                if len(line) > self.max_line_bytes:
                    units.append(StreamUnit(
                        "error",
                        message=f"event line exceeds {self.max_line_bytes} bytes",
                    ))
                elif line.strip():
                    units.append(StreamUnit("line", payload=line))
                continue
            if len(self._buffer) > self.max_line_bytes:
                units.append(StreamUnit(
                    "error",
                    message=f"event line exceeds {self.max_line_bytes} bytes",
                ))
                self._buffer = b""
                self._discarding_line = True
            break
        return units

    def finish(self) -> list[StreamUnit]:
        """Signal EOF; flushes a final unterminated line or reports a
        truncated frame."""
        units: list[StreamUnit] = []
        if self._skip:
            self._skip = 0
            self._buffer = b""
            return units  # the oversized frame was already reported
        if self._discarding_line:
            self._discarding_line = False
            self._buffer = b""
            return units
        if not self._buffer:
            return units
        if self._buffer[0] == FRAME_MAGIC:
            units.append(StreamUnit(
                "error",
                message=(
                    f"stream ended mid-frame ({len(self._buffer)} byte(s) "
                    "of an incomplete binary frame)"
                ),
            ))
        elif len(self._buffer) > self.max_line_bytes:
            units.append(StreamUnit(
                "error",
                message=f"event line exceeds {self.max_line_bytes} bytes",
            ))
        elif self._buffer.strip():
            units.append(StreamUnit("line", payload=self._buffer))
        self._buffer = b""
        return units
