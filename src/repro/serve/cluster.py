"""Fault-tolerant multi-process serving: supervisor, workers, failover.

This module turns the single-process asyncio serving runtime into a
supervised cluster:

* :class:`ClusterSupervisor` runs in the parent process.  It owns the
  :class:`~repro.serve.router.EventRouter`, a per-shard write-ahead log
  (:mod:`repro.serve.wal`), a per-shard two-generation
  :class:`CheckpointStore`, a :class:`~repro.serve.heartbeat.
  HeartbeatMonitor`, and a :class:`DetectionLedger` deduplicating
  replayed detections.  Each shard is a **worker process** (``repro
  serve-worker``) the supervisor talks to over the JSONL control frames
  of :mod:`repro.serve.protocol` — stdin carries events, stdout carries
  detections, acks, and heartbeats.

* :func:`run_worker` is the worker side: a synchronous loop around a
  :class:`ShardReplica` (one detector applying WAL entries in sequence
  order), emitting a beat every heartbeat interval even while idle.

* Failover: on worker death (process exit, broken pipe, or
  ``miss_threshold`` missed heartbeats) the supervisor respawns the
  shard, re-registers its rules, restores the last intact checkpoint,
  and replays the WAL tail past the checkpoint's ``seq``.  Because a
  replica applies entries one at a time in sequence order, replay
  reproduces the pre-crash detector state *and* re-emits the same
  detections with the same ``(seq, k)`` tags — the ledger's per-shard
  watermark turns that at-least-once stream into exactly-once
  collection, so the detection multiset is preserved (the granule
  alignment of Def 4.4 makes per-entry application equivalent to the
  asyncio runtime's granule batching).

* Graceful degradation: recovery is retried with bounded exponential
  backoff + jitter; once the retry budget is exhausted the shard is
  marked unavailable, further events for it are *parked* in its WAL
  (never lost, never blocking healthy shards), and ``ingest`` surfaces
  a structured :class:`ShardUnavailable` signal.  :meth:`~
  ClusterSupervisor.revive` replays the parked tail when the operator
  (or a test) brings the shard back.

* :class:`FaultPlan` is the deterministic fault-injection hook shared
  with :mod:`repro.conformance`: kill shard *k* after WAL entry *n*,
  drop (equivalently: delay past the threshold) a span of heartbeats,
  corrupt the next checkpoint write, or fail the next spawn attempts.

* :class:`LocalFailoverCluster` drives the identical WAL + checkpoint +
  replay + ledger path fully in-process (no OS processes) — the engine
  of the conformance ``failover`` check, the failover bench, and the
  crash-recovery unit tests.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Mapping

from repro.contexts.policies import Context
from repro.detection.checkpoint import restore as restore_detector
from repro.detection.checkpoint import snapshot as snapshot_detector
from repro.detection.detector import Detection, Detector
from repro.errors import ReproError
from repro.events.expressions import EventExpression
from repro.events.parser import parse_expression
from repro.obs.instrument import Instrumentation, resolve
from repro.serve.config import UNSET as _UNSET
from repro.serve.config import ServeConfig
from repro.serve.config import resolve_config as _resolve_config
from repro.serve.heartbeat import Backoff, HeartbeatMonitor
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeEvent,
    detection_to_json,
    frame_to_line,
    parse_frame,
)
from repro.serve.router import EventRouter
from repro.serve.wal import KIND_EVENT, ShardWAL, WalEntry
from repro.time.composite import CompositeTimestamp


# --- fault injection ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic, JSON-serializable schedule of injected faults.

    ``kills``
        ``(shard, seq)`` pairs: kill the shard's worker right after WAL
        entry ``seq`` was dispatched to it (once each).
    ``drop_beats``
        ``(shard, after, count)`` triples: once the supervisor has seen
        ``after`` beats from the shard, silently drop the next ``count``
        — a dropped beat and one delayed past the miss threshold are the
        same fault, so this covers both.
    ``corrupt_checkpoints``
        Shard indices whose *next* checkpoint write gets a corrupted
        integrity checksum (one per listed occurrence); restore must
        detect it and fall back to the previous generation + WAL.
    ``fail_spawns``
        ``(shard, times)`` pairs: the next ``times`` spawn attempts for
        the shard raise — the deterministic route to the retry-budget /
        :class:`ShardUnavailable` degradation path.
    """

    kills: tuple[tuple[int, int], ...] = ()
    drop_beats: tuple[tuple[int, int, int], ...] = ()
    corrupt_checkpoints: tuple[int, ...] = ()
    fail_spawns: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kills": [list(pair) for pair in self.kills],
            "drop_beats": [list(row) for row in self.drop_beats],
            "corrupt_checkpoints": list(self.corrupt_checkpoints),
            "fail_spawns": [list(pair) for pair in self.fail_spawns],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        try:
            return cls(
                kills=tuple(
                    (int(s), int(n)) for s, n in data.get("kills", ())
                ),
                drop_beats=tuple(
                    (int(s), int(a), int(c))
                    for s, a, c in data.get("drop_beats", ())
                ),
                corrupt_checkpoints=tuple(
                    int(s) for s in data.get("corrupt_checkpoints", ())
                ),
                fail_spawns=tuple(
                    (int(s), int(n)) for s, n in data.get("fail_spawns", ())
                ),
            )
        except (TypeError, ValueError) as error:
            raise ReproError(f"malformed fault plan: {error}") from None

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ReproError("fault plan must be a JSON object")
        return cls.from_dict(data)


class FaultInjector:
    """Mutable bookkeeping over a :class:`FaultPlan` (one-shot triggers)."""

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan or FaultPlan()
        self._kills = {(s, n) for s, n in self.plan.kills}
        self._spawn_failures = {s: n for s, n in self.plan.fail_spawns}
        self._corrupt = list(self.plan.corrupt_checkpoints)
        self._beat_windows = [list(row) for row in self.plan.drop_beats]

    def should_kill(self, shard: int, seq: int) -> bool:
        key = (shard, seq)
        if key in self._kills:
            self._kills.remove(key)
            return True
        return False

    def should_drop_beat(self, shard: int, beats_seen: int) -> bool:
        for window in self._beat_windows:
            target, after, count = window
            if target == shard and beats_seen >= after and count > 0:
                window[2] = count - 1
                return True
        return False

    def take_corrupt_checkpoint(self, shard: int) -> bool:
        if shard in self._corrupt:
            self._corrupt.remove(shard)
            return True
        return False

    def take_spawn_failure(self, shard: int) -> bool:
        remaining = self._spawn_failures.get(shard, 0)
        if remaining > 0:
            self._spawn_failures[shard] = remaining - 1
            return True
        return False


# --- degradation signal ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardUnavailable:
    """Structured signal: a shard is down past its retry budget.

    The event that produced it is *parked* in the shard's WAL (counted
    in ``parked``), so nothing is lost — it replays on
    :meth:`ClusterSupervisor.revive`.  Healthy shards are unaffected.
    """

    shard: int
    reason: str
    parked: int


# --- checkpoint persistence --------------------------------------------------


class CheckpointStore:
    """Two-generation checkpoint storage with CRC-32 integrity.

    ``save`` rotates the current generation to the previous one before
    writing (atomically, via temp file + rename when file-backed).
    ``load`` verifies the checksum and falls back to the previous
    generation on corruption — which is why WAL truncation must only
    discard entries covered by the *previous* generation
    (:attr:`retain_after`).  ``path=None`` keeps both generations in
    memory with identical semantics.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._memory: list[str] = []  # [current, previous] serialized docs
        self.corrupt_loads = 0
        if path is not None:
            for candidate in (path, path + ".prev"):
                if os.path.exists(candidate):
                    with open(candidate, "r", encoding="utf-8") as handle:
                        self._memory.append(handle.read())
                else:
                    self._memory.append("")

    @staticmethod
    def _encode(state: Mapping[str, Any], corrupt: bool) -> str:
        payload = json.dumps(state, sort_keys=True)
        crc = zlib.crc32(payload.encode("utf-8"))
        if corrupt:
            crc ^= 0xDEADBEEF
        return json.dumps({"crc": crc, "state": state}, sort_keys=True)

    @staticmethod
    def _decode(text: str) -> dict[str, Any] | None:
        if not text:
            return None
        try:
            doc = json.loads(text)
            state = doc["state"]
            payload = json.dumps(state, sort_keys=True)
            if zlib.crc32(payload.encode("utf-8")) != int(doc["crc"]):
                return None
            return state
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, state: Mapping[str, Any], *, corrupt: bool = False) -> None:
        """Persist a new generation (rotating the old one to ``.prev``)."""
        doc = self._encode(state, corrupt)
        previous = self._memory[0] if self._memory else ""
        self._memory = [doc, previous]
        if self.path is not None:
            if previous:
                with open(self.path + ".prev.tmp", "w", encoding="utf-8") as h:
                    h.write(previous)
                os.replace(self.path + ".prev.tmp", self.path + ".prev")
            with open(self.path + ".tmp", "w", encoding="utf-8") as handle:
                handle.write(doc)
            os.replace(self.path + ".tmp", self.path)

    def load(self) -> dict[str, Any] | None:
        """The newest intact checkpoint state, or ``None``.

        A corrupted current generation is counted and skipped; the
        previous generation (whose WAL tail was retained) backs it up.
        """
        for index, text in enumerate(self._memory):
            state = self._decode(text)
            if state is not None:
                return state
            if index == 0 and text:
                self.corrupt_loads += 1
        return None

    @property
    def retain_after(self) -> int:
        """Truncate the WAL only past this seq (previous generation)."""
        if len(self._memory) < 2:
            return 0
        previous = self._decode(self._memory[1])
        if previous is None:
            return 0
        return int(previous.get("seq", 0))


# --- the deterministic apply core -------------------------------------------


@dataclass(frozen=True, slots=True)
class TaggedDetection:
    """A detection plus its deterministic replay tag ``(seq, k)``."""

    seq: int
    k: int
    detection: Detection


class ShardReplica:
    """One shard's detector applying WAL entries in sequence order.

    The worker process wraps one replica behind the control-frame loop;
    the in-process harness and the conformance ``failover`` check drive
    replicas directly.  Application is deterministic: entry ``seq``
    always produces the same detections in the same order, so a tag
    ``(seq, k)`` names a detection stably across crash/replay — the
    property the supervisor's :class:`DetectionLedger` relies on.
    """

    def __init__(
        self,
        index: int,
        *,
        timer_ratio: int = 1,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.index = index
        self.detector = Detector(
            site=f"shard{index}",
            timer_ratio=timer_ratio,
            instrumentation=instrumentation,
        )
        self.applied_seq = 0

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> None:
        self.detector.register(expression, name=name, context=context)

    def apply(self, entry: WalEntry) -> list[TaggedDetection]:
        """Apply one WAL entry; returns the tagged detections it fired."""
        detector = self.detector
        detections: list[Detection] = []
        if entry.kind == KIND_EVENT:
            event = entry.event
            if event.granule > detector.now_global:
                detections.extend(detector.advance_time(event.granule))
            detections.extend(detector.feed(event.occurrence()))
        else:
            if entry.granule > detector.now_global:
                detections.extend(detector.advance_time(entry.granule))
        self.applied_seq = entry.seq
        return [
            TaggedDetection(entry.seq, k, detection)
            for k, detection in enumerate(detections)
        ]

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint: the applied watermark plus the detector state."""
        return {
            "seq": self.applied_seq,
            "index": self.index,
            "detector": snapshot_detector(self.detector),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        if int(state.get("index", self.index)) != self.index:
            raise ReproError(
                f"checkpoint belongs to shard {state['index']}, "
                f"this is shard {self.index}"
            )
        restore_detector(self.detector, dict(state["detector"]))
        self.applied_seq = int(state["seq"])


class DetectionLedger:
    """Exactly-once detection collection over at-least-once replay.

    Replicas apply entries in sequence order and tag detections with
    ``(seq, k)``; replay after failover re-emits a *prefix-identical*
    tagged stream.  Keeping one high-water mark per shard therefore
    suffices: a tag at or below the mark has already been collected.
    """

    def __init__(self) -> None:
        self._marks: dict[int, tuple[int, int]] = {}
        self.accepted = 0
        self.duplicates = 0

    def offer(self, shard: int, seq: int, k: int) -> bool:
        """True exactly once per (shard, seq, k); False for replays."""
        mark = self._marks.get(shard, (0, -1))
        if (seq, k) <= mark:
            self.duplicates += 1
            return False
        self._marks[shard] = (seq, k)
        self.accepted += 1
        return True


# --- the in-process failover harness ----------------------------------------


class LocalFailoverCluster:
    """The failover path (WAL -> checkpoint -> replay -> ledger) in-process.

    Semantically identical to :class:`ClusterSupervisor` minus the OS
    process boundary: a *kill* discards the shard's replica object
    outright (state, open granules, everything) and rebuilds it from the
    last intact checkpoint plus the WAL tail.  Deterministic and fast —
    this is what the conformance ``failover`` check runs per case and
    what ``bench_serve_failover`` measures.
    """

    def __init__(
        self,
        shards: int,
        *,
        salt: int = 0,
        timer_ratio: int = 1,
        checkpoint_every: int = 8,
        fault_plan: FaultPlan | None = None,
        codec: str | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if checkpoint_every <= 0:
            raise ReproError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.router = EventRouter(shards, salt=salt)
        self.timer_ratio = timer_ratio
        self.checkpoint_every = checkpoint_every
        self.faults = FaultInjector(fault_plan)
        self.obs = resolve(instrumentation)
        self._instrumentation = instrumentation
        self._rules: dict[str, tuple[EventExpression | str, Context]] = {}
        # With a codec, every WAL entry is round-tripped through that
        # encoding before it lands in the replay list — so the failover
        # path replays exactly what the wire format preserves.
        self._wals: dict[int, ShardWAL] = {
            index: ShardWAL(codec=codec) for index in range(shards)
        }
        self._stores: dict[int, CheckpointStore] = {
            index: CheckpointStore() for index in range(shards)
        }
        self._replicas: dict[int, ShardReplica] = {}
        self.ledger = DetectionLedger()
        self._detections: dict[str, list[Any]] = {}
        self.restarts = 0
        self.replayed = 0
        self.checkpoints = 0
        self.events_applied = 0

    # --- registration ----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> int:
        index = self.router.assign(name)
        self._rules[name] = (expression, context)
        self._replica(index).register(expression, name, context)
        self._bind()
        return index

    def _bind(self) -> None:
        by_shard: dict[int, set[str]] = {}
        for name, (expression, _) in self._rules.items():
            parsed = (
                parse_expression(expression)
                if isinstance(expression, str)
                else expression
            )
            by_shard.setdefault(self.router.assignments[name], set()).update(
                parsed.primitive_types()
            )
        self.router.bind(by_shard)

    def _replica(self, index: int) -> ShardReplica:
        replica = self._replicas.get(index)
        if replica is None:
            replica = ShardReplica(
                index,
                timer_ratio=self.timer_ratio,
                instrumentation=self._instrumentation,
            )
            for name in self.router.rules_of(index):
                expression, context = self._rules[name]
                replica.register(expression, name, context)
            self._replicas[index] = replica
        return replica

    # --- the ingest/apply path -------------------------------------------

    def ingest(self, event: ServeEvent) -> None:
        for index in self.router.route(event.event_type):
            entry = self._wals[index].append_event(event)
            self._apply(index, entry)
            self.events_applied += 1
            if entry.seq % self.checkpoint_every == 0:
                self._checkpoint(index)
            if self.faults.should_kill(index, entry.seq):
                self.crash(index)

    def advance(self, granule: int) -> None:
        """Drain-time clock advance on every shard (logged + applied)."""
        for index, wal in self._wals.items():
            entry = wal.append_advance(granule)
            self._apply(index, entry)

    def _apply(self, index: int, entry: WalEntry) -> None:
        for tagged in self._replica(index).apply(entry):
            if self.ledger.offer(index, tagged.seq, tagged.k):
                self._detections.setdefault(
                    tagged.detection.name, []
                ).append(tagged.detection.occurrence)

    def _checkpoint(self, index: int) -> None:
        store = self._stores[index]
        store.save(
            self._replica(index).snapshot(),
            corrupt=self.faults.take_corrupt_checkpoint(index),
        )
        self._wals[index].truncate(store.retain_after)
        self.checkpoints += 1
        if self.obs.enabled:
            self.obs.counter("serve.failover.checkpoints").inc()

    # --- failover --------------------------------------------------------

    def crash(self, index: int) -> int:
        """Kill the shard (discard its replica) and recover it.

        Returns the number of WAL entries replayed.  Detections the dead
        replica had already emitted are deduplicated by the ledger;
        detections it emitted *after* the last checkpoint but before the
        crash are re-derived by the replay — either way the collected
        multiset is exactly the fault-free one.
        """
        self._replicas.pop(index, None)
        self.restarts += 1
        state = self._stores[index].load()
        replica = self._replica(index)
        after = 0
        if state is not None:
            replica.restore(state)
            after = replica.applied_seq
        tail = self._wals[index].tail(after)
        for entry in tail:
            self._apply(index, entry)
        self.replayed += len(tail)
        if self.obs.enabled:
            self.obs.counter("serve.failover.restarts").inc()
            self.obs.histogram("serve.failover.replay_events").observe(
                len(tail)
            )
        return len(tail)

    # --- results ---------------------------------------------------------

    def detections_of(self, name: str):
        """Collected occurrences of one rule (exactly-once)."""
        if name not in self._rules:
            raise ReproError(f"no rule named {name!r} is registered")
        return list(self._detections.get(name, ()))


def replay_with_failover(
    rules: Mapping[str, EventExpression | str],
    events,
    *,
    shards: int = 2,
    salt: int = 0,
    timer_ratio: int = 1,
    context: Context = Context.UNRESTRICTED,
    horizon: int | None = None,
    checkpoint_every: int = 8,
    fault_plan: FaultPlan | None = None,
    codec: str | None = None,
) -> LocalFailoverCluster:
    """Run a finite stream through a faulted in-process cluster.

    The convenience mirror of :func:`repro.serve.runtime.serve_events`
    for the failover harness — registers, ingests, advances to
    ``horizon``, returns the cluster for inspection.  ``codec`` selects
    the WAL storage encoding (``"binary"`` replays through the binary
    wire format).
    """
    cluster = LocalFailoverCluster(
        shards,
        salt=salt,
        timer_ratio=timer_ratio,
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan,
        codec=codec,
    )
    for name, expression in rules.items():
        cluster.register(expression, name, context)
    for event in events:
        cluster.ingest(event)
    if horizon is not None:
        cluster.advance(horizon)
    return cluster


# --- the worker process side -------------------------------------------------


def run_worker(
    shard: int,
    *,
    timer_ratio: int = 1,
    heartbeat_interval: float = 0.25,
    in_stream: IO[bytes] | None = None,
    out_stream: IO[str] | None = None,
) -> int:
    """The ``repro serve-worker`` loop: one replica behind JSONL frames.

    Reads control frames from ``in_stream`` (default: raw stdin), writes
    response frames to ``out_stream`` (default: stdout, flushed per
    line).  Emits a ``beat`` frame every ``heartbeat_interval`` seconds
    even while idle (using ``select`` on the input fd so buffered lines
    are never stranded).  A malformed or failing frame produces one
    structured ``error`` frame and the loop survives — the supervisor
    decides whether to kill.  EOF on stdin is the shutdown signal.
    """
    import select as select_mod

    replica = ShardReplica(shard, timer_ratio=timer_ratio)
    out = out_stream if out_stream is not None else sys.stdout

    def emit(op: str, **fields: Any) -> None:
        out.write(frame_to_line(op, **fields) + "\n")
        out.flush()

    def handle(frame: dict[str, Any]) -> bool:
        """Process one frame; returns False when the worker should exit."""
        op = frame["op"]
        if op == "register":
            replica.register(
                str(frame["expression"]),
                name=str(frame["name"]),
                context=Context(frame.get("context", "unrestricted")),
            )
        elif op == "restore":
            replica.restore(frame["state"])
            emit("ack", seq=replica.applied_seq)
        elif op in ("event", "advance"):
            entry = WalEntry.from_dict(
                {
                    "seq": frame["seq"],
                    "kind": frame["op"],
                    "event": frame.get("event"),
                    "granule": frame.get("granule"),
                }
            )
            for tagged in replica.apply(entry):
                emit(
                    "detection",
                    seq=tagged.seq,
                    k=tagged.k,
                    row=detection_to_json(shard, tagged.detection),
                )
            emit("ack", seq=entry.seq)
        elif op == "checkpoint":
            emit(
                "checkpoint_state",
                seq=replica.applied_seq,
                state=replica.snapshot(),
            )
        elif op == "stop":
            return False
        else:  # an op valid on the wire but not inbound (beat/ack/...)
            emit("error", message=f"unexpected inbound op {op!r}")
        return True

    emit("beat", seq=0)
    source = in_stream if in_stream is not None else sys.stdin.buffer
    try:
        fd = source.fileno()  # io.UnsupportedOperation subclasses OSError
    except (AttributeError, OSError, ValueError):
        fd = None
    buffer = b""
    last_beat = time.monotonic()
    running = True
    while running:
        newline = buffer.find(b"\n")
        if newline < 0:
            if fd is not None:
                ready, _, _ = select_mod.select([fd], [], [], heartbeat_interval)
                if not ready:
                    emit("beat", seq=replica.applied_seq)
                    last_beat = time.monotonic()
                    continue
                chunk = os.read(fd, 1 << 16)
            else:  # in-memory stream (tests): no select, just read
                chunk = source.read(1 << 16)
            if not chunk:
                break
            buffer += chunk
            continue
        line, buffer = buffer[:newline], buffer[newline + 1 :]
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            frame = parse_frame(text)
        except ReproError as error:
            emit("error", message=str(error))
            continue
        try:
            running = handle(frame)
        except ReproError as error:
            emit("error", message=str(error))
        except Exception as error:  # noqa: BLE001 - keep the loop alive
            emit("error", message=f"{type(error).__name__}: {error}")
        if time.monotonic() - last_beat >= heartbeat_interval:
            emit("beat", seq=replica.applied_seq)
            last_beat = time.monotonic()
    return 0


# --- the supervisor ----------------------------------------------------------


_STARTUP_TIMEOUT = 30.0
"""Seconds a freshly spawned worker gets to emit its first frame."""

_WORKER_FRAME_LIMIT = 64 * MAX_LINE_BYTES
"""Stream limit for frames read *from* a worker.

``checkpoint_state`` and ``detection`` frames wrap whole detector
snapshots and merged parameter maps, so they can legitimately exceed
the 1 MiB event-line bound; giving the worker's stdout a much larger
limit keeps them deliverable.  A frame past even this limit is
discarded by the stream reader and counted in
:attr:`ClusterSupervisor.frames_dropped`.
"""


class _Worker:
    """Supervisor-side handle of one live worker process."""

    __slots__ = (
        "process", "reader", "dead", "acked_seq", "applied", "beats_seen",
        "started", "sent_seq",
    )

    def __init__(self, process: asyncio.subprocess.Process) -> None:
        self.process = process
        self.reader: asyncio.Task | None = None
        self.dead = False
        self.acked_seq = 0
        self.applied = asyncio.Event()
        self.beats_seen = 0
        self.started = asyncio.Event()
        # Highest WAL seq already sent to this worker (restore replay
        # included) — _deliver skips entries at or below it, so an
        # entry covered by a recovery's tail replay is never re-sent.
        self.sent_seq = 0


class ClusterSupervisor:
    """Runs each shard as a supervised ``repro serve-worker`` process.

    Configure through ``config=ServeConfig(...)`` — the relevant fields
    are ``procs`` (worker count; falls back to ``shards``), ``salt``,
    ``timer_ratio``, ``state_dir`` (required), ``heartbeat_interval``,
    ``miss_threshold``, ``retry_budget``, ``checkpoint_every``,
    ``seed``, and ``codec`` (``"binary"`` stores the WALs in binary
    frames, so failover replay consumes the wire encoding).  The
    individual keyword arguments are deprecated aliases; mixing them
    with ``config=`` raises ``TypeError``.

    ``state_dir`` holds per-shard WAL and checkpoint files (created if
    missing); a supervisor restarted over the same directory recovers
    parked and unreplayed events.  ``fault_plan`` (deterministic fault
    injection for tests and chaos CI) and ``on_detection`` (the
    streaming callback of ``repro serve --procs --stdin``) are runtime
    collaborators, not configuration — they stay regular parameters.
    """

    def __init__(
        self,
        shards: int = _UNSET,
        *,
        salt: int = _UNSET,
        timer_ratio: int = _UNSET,
        state_dir: str = _UNSET,
        heartbeat_interval: float = _UNSET,
        miss_threshold: int = _UNSET,
        retry_budget: int = _UNSET,
        checkpoint_every: int = _UNSET,
        seed: int = _UNSET,
        config: "ServeConfig | None" = None,
        fault_plan: FaultPlan | None = None,
        instrumentation: Instrumentation | None = None,
        on_detection: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("shards", shards),
                ("salt", salt),
                ("timer_ratio", timer_ratio),
                ("state_dir", state_dir),
                ("heartbeat_interval", heartbeat_interval),
                ("miss_threshold", miss_threshold),
                ("retry_budget", retry_budget),
                ("checkpoint_every", checkpoint_every),
                ("seed", seed),
            )
            if value is not _UNSET
        }
        # The legacy signature's default checkpoint cadence (64) is the
        # ServeConfig default too, so folding legacy keywords into a
        # config is value-preserving.
        config = _resolve_config("ClusterSupervisor", config, legacy)
        self.config = config
        procs = config.procs if config.procs is not None else config.shards
        if config.state_dir is None:
            raise ReproError(
                "ClusterSupervisor needs a state_dir "
                "(set it on the ServeConfig)"
            )
        state_dir = config.state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.router = EventRouter(procs, salt=config.salt)
        self.timer_ratio = config.timer_ratio
        self.state_dir = state_dir
        self.retry_budget = config.retry_budget
        self.checkpoint_every = config.checkpoint_every
        self.monitor = HeartbeatMonitor(
            config.heartbeat_interval, config.miss_threshold
        )
        self.backoff = Backoff(seed=config.seed)
        self.faults = FaultInjector(fault_plan)
        self.obs = resolve(instrumentation)
        self.on_detection = on_detection
        self._rules: dict[str, tuple[str, Context]] = {}
        # "binary" stores WAL entries as version-1 frames; "jsonl" and
        # "auto" keep the legacy text layout (compatible with existing
        # state directories — binary is an explicit storage upgrade).
        wal_codec = "binary" if config.codec == "binary" else None
        shards = procs
        self._wals: dict[int, ShardWAL] = {
            k: ShardWAL(
                os.path.join(state_dir, f"shard{k}.wal"), codec=wal_codec
            )
            for k in range(shards)
        }
        self._stores: dict[int, CheckpointStore] = {
            k: CheckpointStore(os.path.join(state_dir, f"shard{k}.ckpt"))
            for k in range(shards)
        }
        # A restarted supervisor must never number new entries below
        # the durable checkpoint watermark (they would be invisible to
        # recovery's tail replay), even if the WAL file is gone.
        for k, wal in self._wals.items():
            state = self._stores[k].load()
            wal.seed_seq(
                max(
                    int(state.get("seq", 0)) if state is not None else 0,
                    self._stores[k].retain_after,
                )
            )
        self._workers: dict[int, _Worker] = {}
        self._locks: dict[int, asyncio.Lock] = {}
        self._unavailable: dict[int, str] = {}
        self.ledger = DetectionLedger()
        self._detections: dict[str, list[dict[str, Any]]] = {}
        self._monitor_task: asyncio.Task | None = None
        self._stopping = False
        self.restarts = 0
        self.replayed = 0
        self.parked = 0
        self.checkpoints = 0
        self.events_ingested = 0
        self.events_unrouted = 0
        self.frames_dropped = 0

    # --- registration ----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> int:
        """Register one rule; returns the owning shard index.

        The expression is parsed here both to validate it before any
        worker sees it and to derive the routing subscription map (the
        parent holds no compiled detection graph — the workers do).
        """
        parsed = (
            parse_expression(expression)
            if isinstance(expression, str)
            else expression
        )
        index = self.router.assign(name)
        self._rules[name] = (str(parsed), context)
        by_shard: dict[int, set[str]] = {}
        for rule, (text, _) in self._rules.items():
            by_shard.setdefault(
                self.router.assignments[rule], set()
            ).update(parse_expression(text).primitive_types())
        self.router.bind(by_shard)
        return index

    def rule_names(self) -> list[str]:
        return sorted(self._rules)

    # --- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker (recovering any durable WAL/checkpoints)."""
        self._stopping = False
        for index in range(self.router.shards):
            await self._recover(index, count_restart=False)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor_loop(), name="repro-serve-cluster-monitor"
        )

    async def __aenter__(self) -> "ClusterSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # --- ingest / dispatch -----------------------------------------------

    async def ingest(self, event: ServeEvent) -> list[ShardUnavailable]:
        """Route one event; WAL-append, dispatch, inject planned faults.

        Returns the degradation signals (empty while everything is
        healthy).  Events for an unavailable shard are parked in its
        WAL; healthy shards are never blocked by a sick one.
        """
        targets = self.router.route(event.event_type)
        if not targets:
            self.events_unrouted += 1
            return []
        self.events_ingested += 1
        signals: list[ShardUnavailable] = []
        for index in targets:
            entry = self._wals[index].append_event(event)
            signal = await self._deliver(index, entry)
            if signal is not None:
                signals.append(signal)
        return signals

    async def _deliver(
        self, index: int, entry: WalEntry
    ) -> ShardUnavailable | None:
        # The per-shard lock serializes dispatch with recovery: while a
        # respawn is mid register/restore/replay, a concurrent ingest
        # (the stdin pump keeps running while the monitor loop recovers
        # a shard) parks here instead of interleaving its event frame
        # into the replay stream.  The entry is already in the WAL, so
        # either the in-flight recovery's tail covers it (sent_seq then
        # says skip) or we send it now, strictly after the replay.
        async with self._lock(index):
            if index in self._unavailable:
                self.parked += 1
                if self.obs.enabled:
                    self.obs.counter("serve.failover.parked").inc()
                return ShardUnavailable(
                    index, self._unavailable[index], self.parked
                )
            worker = self._workers.get(index)
            if worker is None or worker.dead:
                # Recovery replays the WAL tail, which includes this entry.
                if not await self._recover_locked(index):
                    self.parked += 1
                    return ShardUnavailable(
                        index, self._unavailable.get(index, "down"),
                        self.parked,
                    )
            elif entry.seq > worker.sent_seq:
                try:
                    await self._send(worker, entry.frame())
                    worker.sent_seq = entry.seq
                    if entry.seq % self.checkpoint_every == 0:
                        await self._send(worker, {"op": "checkpoint"})
                except (OSError, ConnectionError, BrokenPipeError):
                    worker.dead = True
                    if not await self._recover_locked(index):
                        self.parked += 1
                        return ShardUnavailable(
                            index, self._unavailable.get(index, "down"),
                            self.parked,
                        )
            if self.faults.should_kill(index, entry.seq):
                live = self._workers.get(index)
                if live is not None and not live.dead:
                    live.process.kill()
                    live.dead = True
            return None

    async def _send(self, worker: _Worker, frame: dict[str, Any]) -> None:
        line = json.dumps(frame, sort_keys=True) + "\n"
        worker.process.stdin.write(line.encode("utf-8"))
        await worker.process.stdin.drain()

    # --- worker output ---------------------------------------------------

    async def _read_loop(self, index: int, worker: _Worker) -> None:
        stream = worker.process.stdout
        while True:
            try:
                raw = await stream.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # The stream reader discarded a frame past
                # _WORKER_FRAME_LIMIT.  Stay connected, but surface the
                # loss: a dropped detection or checkpoint_state frame
                # is otherwise invisible (and a shard whose checkpoints
                # never land grows its WAL without bound).
                self.frames_dropped += 1
                if self.obs.enabled:
                    self.obs.counter(
                        "serve.failover.frames_dropped", shard=index
                    ).inc()
                continue
            if not raw:
                break
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                frame = parse_frame(text)
            except ReproError:
                continue
            worker.started.set()  # any frame proves the process is up
            self._handle_frame(index, worker, frame)
        worker.dead = True
        worker.started.set()
        worker.applied.set()  # wake any drain barrier so it re-checks

    def _handle_frame(
        self, index: int, worker: _Worker, frame: dict[str, Any]
    ) -> None:
        op = frame["op"]
        if op == "beat":
            worker.beats_seen += 1
            if self.faults.should_drop_beat(index, worker.beats_seen):
                if self.obs.enabled:
                    self.obs.counter("serve.failover.beats_dropped").inc()
                return
            self.monitor.beat(index)
        elif op == "ack":
            worker.acked_seq = max(worker.acked_seq, int(frame["seq"]))
            worker.applied.set()
            self.monitor.beat(index)  # an ack is proof of life too
        elif op == "detection":
            seq, k = int(frame["seq"]), int(frame["k"])
            if self.ledger.offer(index, seq, k):
                row = frame["row"]
                self._detections.setdefault(row["detection"], []).append(row)
                if self.obs.enabled:
                    self.obs.counter(
                        "serve.detections", shard=index
                    ).inc()
                if self.on_detection is not None:
                    self.on_detection(row)
        elif op == "checkpoint_state":
            store = self._stores[index]
            store.save(
                frame["state"],
                corrupt=self.faults.take_corrupt_checkpoint(index),
            )
            self._wals[index].truncate(store.retain_after)
            self.checkpoints += 1
            if self.obs.enabled:
                self.obs.counter("serve.failover.checkpoints").inc()
        # "error" frames are tolerated: the worker survived the problem.

    # --- failure detection and recovery ----------------------------------

    async def _monitor_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.monitor.interval)
            for index in range(self.router.shards):
                if self._stopping or index in self._unavailable:
                    continue
                worker = self._workers.get(index)
                if worker is None:
                    continue
                if worker.dead:
                    await self._recover(index)
                elif self.monitor.suspect(index):
                    if self.obs.enabled:
                        self.obs.counter("serve.failover.beats_missed").inc(
                            self.monitor.missed(index)
                        )
                    worker.process.kill()
                    worker.dead = True
                    await self._recover(index)

    def _lock(self, index: int) -> asyncio.Lock:
        lock = self._locks.get(index)
        if lock is None:
            lock = self._locks[index] = asyncio.Lock()
        return lock

    async def _recover(self, index: int, count_restart: bool = True) -> bool:
        """Respawn a shard: register, restore checkpoint, replay WAL tail.

        Bounded by ``retry_budget`` attempts with exponential backoff +
        jitter; returns False (and marks the shard unavailable) when the
        budget is exhausted.  Serialized per shard — against other
        recoveries *and* against :meth:`_deliver` — so the monitor loop
        cannot race a double respawn and a concurrent ingest cannot
        interleave event frames into the restore/replay stream.
        """
        async with self._lock(index):
            return await self._recover_locked(index, count_restart)

    async def _recover_locked(
        self, index: int, count_restart: bool = True
    ) -> bool:
        """The body of :meth:`_recover`; the per-shard lock is held."""
        existing = self._workers.get(index)
        if existing is not None and not existing.dead:
            return True  # someone else already recovered it
        started = time.perf_counter_ns()
        failure = "unknown"
        for attempt in range(self.retry_budget + 1):
            try:
                await self._reap(index)
                worker = await self._spawn(index)
                self._workers[index] = worker
                # Wait for the startup beat before arming the
                # liveness/dispatch clocks: interpreter startup must
                # never be mistaken for a dispatch stall.
                try:
                    await asyncio.wait_for(
                        worker.started.wait(), timeout=_STARTUP_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    raise ReproError(
                        f"shard {index} worker emitted no frame within "
                        f"{_STARTUP_TIMEOUT}s of spawn"
                    ) from None
                if worker.dead:
                    raise ReproError(
                        f"shard {index} worker exited during startup"
                    )
                for name in self.router.rules_of(index):
                    text, context = self._rules[name]
                    await self._send(
                        worker,
                        {
                            "op": "register",
                            "name": name,
                            "expression": text,
                            "context": context.value,
                        },
                    )
                state = self._stores[index].load()
                after = 0
                if state is not None:
                    await self._send(
                        worker, {"op": "restore", "state": state}
                    )
                    after = int(state["seq"])
                tail = self._wals[index].tail(after)
                for entry in tail:
                    await self._send(worker, entry.frame())
                worker.sent_seq = tail[-1].seq if tail else after
                self._unavailable.pop(index, None)
                self.monitor.mark(index)
                if count_restart:
                    self.restarts += 1
                    self.replayed += len(tail)
                    if self.obs.enabled:
                        self.obs.counter("serve.failover.restarts").inc()
                        self.obs.histogram(
                            "serve.failover.replay_events"
                        ).observe(len(tail))
                        self.obs.histogram(
                            "serve.failover.restart_ns"
                        ).observe(time.perf_counter_ns() - started)
                return True
            except (ReproError, OSError, ConnectionError) as error:
                failure = str(error)
                await asyncio.sleep(self.backoff.delay(attempt))
        self._unavailable[index] = failure
        self.monitor.forget(index)
        if self.obs.enabled:
            self.obs.counter("serve.failover.unavailable").inc()
        return False

    async def _spawn(self, index: int) -> _Worker:
        if self.faults.take_spawn_failure(index):
            raise ReproError(f"injected spawn failure for shard {index}")
        process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.cli",
            "serve-worker",
            "--shard",
            str(index),
            "--timer-ratio",
            str(self.timer_ratio),
            "--heartbeat-interval",
            str(self.monitor.interval),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            limit=_WORKER_FRAME_LIMIT,
        )
        worker = _Worker(process)
        worker.reader = asyncio.get_running_loop().create_task(
            self._read_loop(index, worker),
            name=f"repro-serve-cluster-reader-{index}",
        )
        return worker

    async def _reap(self, index: int) -> None:
        worker = self._workers.pop(index, None)
        if worker is None:
            return
        if worker.process.returncode is None:
            worker.process.kill()
        try:
            await asyncio.wait_for(worker.process.wait(), timeout=5)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        if worker.reader is not None:
            worker.reader.cancel()
            try:
                await worker.reader
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    async def revive(self, index: int) -> bool:
        """Bring an unavailable shard back and replay its parked tail."""
        self._unavailable.pop(index, None)
        return await self._recover(index)

    # --- drain / stop ----------------------------------------------------

    async def drain(self, horizon: int | None = None) -> list[ShardUnavailable]:
        """Barrier: every available shard has applied its whole WAL.

        With ``horizon`` each shard's engine clock first advances to
        that granule (logged as a WAL entry so failover replays it too).
        A shard that dies mid-drain is recovered and re-awaited; one
        past its retry budget is skipped and reported, never blocking
        the rest.
        """
        signals: list[ShardUnavailable] = []
        for index in range(self.router.shards):
            if index in self._unavailable:
                signals.append(
                    ShardUnavailable(
                        index, self._unavailable[index], self.parked
                    )
                )
                continue
            if horizon is not None:
                entry = self._wals[index].append_advance(horizon)
                signal = await self._deliver(index, entry)
                if signal is not None:
                    signals.append(signal)
                    continue
            if not await self._await_applied(index, self._wals[index].last_seq):
                signals.append(
                    ShardUnavailable(
                        index, self._unavailable.get(index, "down"),
                        self.parked,
                    )
                )
        return signals

    async def _await_applied(self, index: int, seq: int) -> bool:
        """Wait until the shard's worker acked ``seq`` (dispatch timeout
        -> kill, recover, retry with backoff, bounded by the budget)."""
        timeout = self.monitor.interval * self.monitor.miss_threshold
        for attempt in range(self.retry_budget + 1):
            worker = self._workers.get(index)
            if worker is None or worker.dead:
                if not await self._recover(index):
                    return False
                continue
            while worker.acked_seq < seq and not worker.dead:
                worker.applied.clear()
                if worker.acked_seq >= seq or worker.dead:
                    break
                try:
                    await asyncio.wait_for(
                        worker.applied.wait(), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    break
            if worker.acked_seq >= seq:
                return True
            # Timed out or died: treat as a dispatch failure.
            if not worker.dead:
                worker.process.kill()
                worker.dead = True
            await asyncio.sleep(self.backoff.delay(attempt))
            if not await self._recover(index):
                return False
        self._unavailable.setdefault(index, "dispatch timeout")
        return False

    async def stop(self) -> None:
        """Graceful shutdown: final checkpoints, stop frames, reap all.

        The reader tasks are *awaited to EOF* (not cancelled) for
        gracefully stopped workers, so the final ``checkpoint_state``
        frame is always collected — which is what lets a restarted
        supervisor resume from the durable state with an empty replay
        tail instead of re-deriving (and re-deduplicating) detections.
        """
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for worker in self._workers.values():
            if worker.dead:
                continue
            try:
                await self._send(worker, {"op": "checkpoint"})
                await self._send(worker, {"op": "stop"})
                worker.process.stdin.close()
            except (OSError, ConnectionError):
                pass
        for worker in self._workers.values():
            if worker.process.returncode is None:
                try:
                    await asyncio.wait_for(worker.process.wait(), timeout=10)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    worker.process.kill()
                    await worker.process.wait()
            if worker.reader is not None:
                try:
                    # The reader exits on pipe EOF once the process is
                    # gone, after consuming every buffered frame.
                    await asyncio.wait_for(worker.reader, timeout=10)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    worker.reader.cancel()
        self._workers.clear()
        for wal in self._wals.values():
            wal.close()

    # --- results ---------------------------------------------------------

    def detection_rows(self, name: str) -> list[dict[str, Any]]:
        """The collected JSON detection rows of one rule."""
        if name not in self._rules:
            raise ReproError(f"no rule named {name!r} is registered")
        return list(self._detections.get(name, ()))

    def timestamps_of(self, name: str) -> list[CompositeTimestamp]:
        """Composite timestamps of one rule's collected detections."""
        return [
            CompositeTimestamp.from_triples(
                [(site, int(g), int(l)) for site, g, l in row["timestamp"]]
            )
            for row in self.detection_rows(name)
        ]

    def unavailable_shards(self) -> dict[int, str]:
        """Currently degraded shards and why (empty when healthy)."""
        return dict(self._unavailable)


async def cluster_serve_stdin(
    supervisor: ClusterSupervisor,
    *,
    in_stream: IO[str] | IO[bytes] | None = None,
    out_stream: IO[str] | None = None,
    horizon_pad: int = 1,
    max_line_bytes: int = MAX_LINE_BYTES,
    codec: str | None = None,
) -> int:
    """Pump events from a stream through the cluster.

    The ``repro serve --procs N --stdin`` transport.  Input may be
    JSONL lines, version-1 binary event frames, or any interleaving —
    the splitter tells them apart by leading byte — subject to the
    ``codec`` mode (default: the supervisor's config): ``"jsonl"`` pins
    version 0 and rejects binary frames with a structured error;
    ``"binary"``/``"auto"`` accept both.  A client hello line is
    answered with a hello ack naming the chosen codec.  Detections and
    errors stream to ``out_stream`` as JSONL rows regardless of the
    ingest framing (pipeline composability: ``repro serve`` stdout is
    line-oriented).  Malformed, oversized, or corrupt input costs one
    structured error object each and the loop survives.  After EOF the
    cluster drains to ``last granule + horizon_pad`` and stops.
    """
    from repro.serve.protocol import (
        CodecError,
        StreamDecoder,
        choose_codec,
        get_codec,
        hello_ack_line,
        parse_hello,
    )

    mode = codec if codec is not None else supervisor.config.codec
    source = in_stream if in_stream is not None else sys.stdin
    target = out_stream if out_stream is not None else sys.stdout
    jsonl = get_codec("jsonl")
    binary = get_codec("binary")

    def write_line(line: str) -> None:
        target.write(line + "\n")
        target.flush()

    def write_error(message: str, **fields: Any) -> None:
        payload = {"error": message}
        payload.update(fields)
        write_line(json.dumps(payload, sort_keys=True))

    supervisor.on_detection = lambda row: write_line(
        json.dumps(row, sort_keys=True)
    )
    count = 0
    last_granule: int | None = None

    async def handle_event(event: ServeEvent) -> None:
        nonlocal count, last_granule
        for signal in await supervisor.ingest(event):
            write_error(
                "shard unavailable",
                shard=signal.shard,
                reason=signal.reason,
                parked=signal.parked,
            )
        count += 1
        granule = event.granule
        last_granule = (
            granule if last_granule is None else max(last_granule, granule)
        )

    async def handle_unit(unit: Any) -> None:
        if unit.kind == "error":
            write_error(unit.message)
            return
        if unit.kind == "frame":
            if mode == "jsonl":
                write_error(
                    "binary frame rejected: this server speaks jsonl only"
                )
                return
            try:
                events = binary.decode_batch(unit.payload)
            except CodecError as error:
                write_error(str(error))
                return
            for event in events:
                await handle_event(event)
            return
        # A JSONL line: a hello, an event, or garbage.
        try:
            data = json.loads(unit.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            write_error(f"invalid JSON event line: {error}")
            return
        if isinstance(data, dict):
            offered = parse_hello(data)
            if offered is not None:
                write_line(hello_ack_line(choose_codec(mode, offered)))
                return
        if not isinstance(data, dict):
            write_error(
                f"event line must be a JSON object, got {type(data).__name__}"
            )
            return
        try:
            await handle_event(ServeEvent.from_dict(data))
        except ReproError as error:
            write_error(str(error))

    splitter = StreamDecoder(
        max_line_bytes=max_line_bytes,
        max_frame_bytes=binary.frame_limit(max_line_bytes),
    )
    # sys.stdin (and any text wrapper over a buffer) yields its raw
    # byte stream for frame-capable reading; a plain text stream (tests
    # pass io.StringIO) stays line-oriented and is re-framed per line.
    raw = getattr(source, "buffer", None)
    byte_source = raw if raw is not None else source
    reads_bytes = not hasattr(byte_source, "encoding")

    await supervisor.start()
    try:
        if reads_bytes:
            while chunk := await asyncio.to_thread(byte_source.read, 1 << 16):
                for unit in splitter.feed(chunk):
                    await handle_unit(unit)
        else:
            while line := await asyncio.to_thread(source.readline):
                for unit in splitter.feed(line.encode("utf-8")):
                    await handle_unit(unit)
        for unit in splitter.finish():
            await handle_unit(unit)
        horizon = None if last_granule is None else last_granule + horizon_pad
        await supervisor.drain(horizon)
    finally:
        await supervisor.stop()
    return count
