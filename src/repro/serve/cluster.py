"""Fault-tolerant multi-process serving: supervisor, workers, failover.

This module turns the single-process asyncio serving runtime into a
supervised cluster:

* :class:`ClusterSupervisor` runs in the parent process.  It owns the
  :class:`~repro.serve.router.EventRouter`, a per-shard write-ahead log
  (:mod:`repro.serve.wal`), a per-shard two-generation
  :class:`CheckpointStore`, a :class:`~repro.serve.heartbeat.
  HeartbeatMonitor`, and a :class:`DetectionLedger` deduplicating
  replayed detections.  Each shard is a **worker process** (``repro
  serve-worker``) the supervisor talks to over the JSONL control frames
  of :mod:`repro.serve.protocol` — stdin carries events, stdout carries
  detections, acks, and heartbeats.

* :func:`run_worker` is the worker side: a synchronous loop around a
  :class:`ShardReplica` (one detector applying WAL entries in sequence
  order), emitting a beat every heartbeat interval even while idle.

* Failover: on worker death (process exit, broken pipe, or
  ``miss_threshold`` missed heartbeats) the supervisor respawns the
  shard, re-registers its rules, restores the last intact checkpoint,
  and replays the WAL tail past the checkpoint's ``seq``.  Because a
  replica applies entries one at a time in sequence order, replay
  reproduces the pre-crash detector state *and* re-emits the same
  detections with the same ``(seq, k)`` tags — the ledger's per-shard
  watermark turns that at-least-once stream into exactly-once
  collection, so the detection multiset is preserved (the granule
  alignment of Def 4.4 makes per-entry application equivalent to the
  asyncio runtime's granule batching).

* Graceful degradation: recovery is retried with bounded exponential
  backoff + jitter; once the retry budget is exhausted the shard is
  marked unavailable, further events for it are *parked* in its WAL
  (never lost, never blocking healthy shards), and ``ingest`` surfaces
  a structured :class:`ShardUnavailable` signal.  :meth:`~
  ClusterSupervisor.revive` replays the parked tail when the operator
  (or a test) brings the shard back.

* :class:`FaultPlan` is the deterministic fault-injection hook shared
  with :mod:`repro.conformance`: kill shard *k* after WAL entry *n*,
  drop (equivalently: delay past the threshold) a span of heartbeats,
  corrupt the next checkpoint write, or fail the next spawn attempts.

* :class:`LocalFailoverCluster` drives the identical WAL + checkpoint +
  replay + ledger path fully in-process (no OS processes) — the engine
  of the conformance ``failover`` check, the failover bench, and the
  crash-recovery unit tests.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import time
import warnings
import zlib
from contextlib import AsyncExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Mapping

from repro.contexts.policies import Context
from repro.detection.approximate import (
    ApproximateStabilizer,
    Verdict,
    VerdictDetection,
)
from repro.detection.checkpoint import restore as restore_detector
from repro.detection.checkpoint import snapshot as snapshot_detector
from repro.detection.detector import Detection, Detector
from repro.errors import ReproError
from repro.events.expressions import EventExpression
from repro.events.parser import parse_expression
from repro.obs.instrument import Instrumentation, resolve
from repro.serve.admin import ClusterAdmin, ClusterStatus
from repro.serve.config import UNSET as _UNSET
from repro.serve.config import ServeConfig
from repro.serve.config import resolve_config as _resolve_config
from repro.serve.heartbeat import Backoff, HeartbeatMonitor
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeEvent,
    detection_to_json,
    frame_to_line,
    parse_frame,
)
from repro.serve.rebalance import ScaleReport, graft_detector
from repro.serve.router import EventRouter
from repro.serve.transport import (
    WorkerLink,
    WorkerTransport,
    resolve_transport,
)
from repro.serve.wal import KIND_EVENT, ShardWAL, WalEntry
from repro.time.composite import CompositeTimestamp


# --- fault injection ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic, JSON-serializable schedule of injected faults.

    ``kills``
        ``(shard, seq)`` pairs: kill the shard's worker right after WAL
        entry ``seq`` was dispatched to it (once each).
    ``drop_beats``
        ``(shard, after, count)`` triples: once the supervisor has seen
        ``after`` beats from the shard, silently drop the next ``count``
        — a dropped beat and one delayed past the miss threshold are the
        same fault, so this covers both.
    ``corrupt_checkpoints``
        Shard indices whose *next* checkpoint write gets a corrupted
        integrity checksum (one per listed occurrence); restore must
        detect it and fall back to the previous generation + WAL.
    ``fail_spawns``
        ``(shard, times)`` pairs: the next ``times`` spawn attempts for
        the shard raise — the deterministic route to the retry-budget /
        :class:`ShardUnavailable` degradation path.
    ``scale_kills``
        Shard indices killed the moment the next ``scale`` asks them
        for their state handoff (one per listed occurrence) — the
        mid-migration crash: the handoff is in flight, the worker dies,
        and the migration must fall back to the shard's durable
        checkpoint + WAL without losing or duplicating detections.
    """

    kills: tuple[tuple[int, int], ...] = ()
    drop_beats: tuple[tuple[int, int, int], ...] = ()
    corrupt_checkpoints: tuple[int, ...] = ()
    fail_spawns: tuple[tuple[int, int], ...] = ()
    scale_kills: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kills": [list(pair) for pair in self.kills],
            "drop_beats": [list(row) for row in self.drop_beats],
            "corrupt_checkpoints": list(self.corrupt_checkpoints),
            "fail_spawns": [list(pair) for pair in self.fail_spawns],
            "scale_kills": list(self.scale_kills),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        try:
            return cls(
                kills=tuple(
                    (int(s), int(n)) for s, n in data.get("kills", ())
                ),
                drop_beats=tuple(
                    (int(s), int(a), int(c))
                    for s, a, c in data.get("drop_beats", ())
                ),
                corrupt_checkpoints=tuple(
                    int(s) for s in data.get("corrupt_checkpoints", ())
                ),
                fail_spawns=tuple(
                    (int(s), int(n)) for s, n in data.get("fail_spawns", ())
                ),
                scale_kills=tuple(
                    int(s) for s in data.get("scale_kills", ())
                ),
            )
        except (TypeError, ValueError) as error:
            raise ReproError(f"malformed fault plan: {error}") from None

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"fault plan is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ReproError("fault plan must be a JSON object")
        return cls.from_dict(data)


class FaultInjector:
    """Mutable bookkeeping over a :class:`FaultPlan` (one-shot triggers)."""

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan or FaultPlan()
        self._kills = {(s, n) for s, n in self.plan.kills}
        self._spawn_failures = {s: n for s, n in self.plan.fail_spawns}
        self._corrupt = list(self.plan.corrupt_checkpoints)
        self._beat_windows = [list(row) for row in self.plan.drop_beats]
        self._scale_kills = list(self.plan.scale_kills)

    def should_kill(self, shard: int, seq: int) -> bool:
        key = (shard, seq)
        if key in self._kills:
            self._kills.remove(key)
            return True
        return False

    def should_drop_beat(self, shard: int, beats_seen: int) -> bool:
        for window in self._beat_windows:
            target, after, count = window
            if target == shard and beats_seen >= after and count > 0:
                window[2] = count - 1
                return True
        return False

    def take_corrupt_checkpoint(self, shard: int) -> bool:
        if shard in self._corrupt:
            self._corrupt.remove(shard)
            return True
        return False

    def take_spawn_failure(self, shard: int) -> bool:
        remaining = self._spawn_failures.get(shard, 0)
        if remaining > 0:
            self._spawn_failures[shard] = remaining - 1
            return True
        return False

    def take_scale_kill(self, shard: int) -> bool:
        if shard in self._scale_kills:
            self._scale_kills.remove(shard)
            return True
        return False


# --- degradation signal ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardUnavailable:
    """Structured signal: a shard is down past its retry budget.

    The event that produced it is *parked* in the shard's WAL (counted
    in ``parked``), so nothing is lost — it replays on
    :meth:`ClusterSupervisor.revive`.  Healthy shards are unaffected.
    """

    shard: int
    reason: str
    parked: int


# --- checkpoint persistence --------------------------------------------------


class CheckpointStore:
    """Two-generation checkpoint storage with CRC-32 integrity.

    ``save`` rotates the current generation to the previous one before
    writing (atomically, via temp file + rename when file-backed).
    ``load`` verifies the checksum and falls back to the previous
    generation on corruption — which is why WAL truncation must only
    discard entries covered by the *previous* generation
    (:attr:`retain_after`).  ``path=None`` keeps both generations in
    memory with identical semantics.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._memory: list[str] = []  # [current, previous] serialized docs
        self.corrupt_loads = 0
        if path is not None:
            for candidate in (path, path + ".prev"):
                if os.path.exists(candidate):
                    with open(candidate, "r", encoding="utf-8") as handle:
                        self._memory.append(handle.read())
                else:
                    self._memory.append("")

    @staticmethod
    def _encode(state: Mapping[str, Any], corrupt: bool) -> str:
        payload = json.dumps(state, sort_keys=True)
        crc = zlib.crc32(payload.encode("utf-8"))
        if corrupt:
            crc ^= 0xDEADBEEF
        return json.dumps({"crc": crc, "state": state}, sort_keys=True)

    @staticmethod
    def _decode(text: str) -> dict[str, Any] | None:
        if not text:
            return None
        try:
            doc = json.loads(text)
            state = doc["state"]
            payload = json.dumps(state, sort_keys=True)
            if zlib.crc32(payload.encode("utf-8")) != int(doc["crc"]):
                return None
            return state
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def save(self, state: Mapping[str, Any], *, corrupt: bool = False) -> None:
        """Persist a new generation (rotating the old one to ``.prev``)."""
        doc = self._encode(state, corrupt)
        previous = self._memory[0] if self._memory else ""
        self._memory = [doc, previous]
        if self.path is not None:
            if previous:
                with open(self.path + ".prev.tmp", "w", encoding="utf-8") as h:
                    h.write(previous)
                os.replace(self.path + ".prev.tmp", self.path + ".prev")
            with open(self.path + ".tmp", "w", encoding="utf-8") as handle:
                handle.write(doc)
            os.replace(self.path + ".tmp", self.path)

    def load(self) -> dict[str, Any] | None:
        """The newest intact checkpoint state, or ``None``.

        A corrupted current generation is counted and skipped; the
        previous generation (whose WAL tail was retained) backs it up.
        """
        for index, text in enumerate(self._memory):
            state = self._decode(text)
            if state is not None:
                return state
            if index == 0 and text:
                self.corrupt_loads += 1
        return None

    @property
    def retain_after(self) -> int:
        """Truncate the WAL only past this seq (previous generation)."""
        if len(self._memory) < 2:
            return 0
        previous = self._decode(self._memory[1])
        if previous is None:
            return 0
        return int(previous.get("seq", 0))


# --- the deterministic apply core -------------------------------------------


@dataclass(frozen=True, slots=True)
class TaggedDetection:
    """A detection plus its deterministic replay tag ``(seq, k)``.

    On an approximate replica every *verdict emission* — tentative,
    confirmed, or retracted — is one tagged unit (``verdict`` carries
    the full :class:`~repro.detection.approximate.VerdictDetection`),
    so retractions replay through the WAL with the same exactly-once
    ``(seq, k)`` discipline as detections.
    """

    seq: int
    k: int
    detection: Detection
    verdict: VerdictDetection | None = None


class ShardReplica:
    """One shard's detector applying WAL entries in sequence order.

    The worker process wraps one replica behind the control-frame loop;
    the in-process harness and the conformance ``failover`` check drive
    replicas directly.  Application is deterministic: entry ``seq``
    always produces the same detections in the same order, so a tag
    ``(seq, k)`` names a detection stably across crash/replay — the
    property the supervisor's :class:`DetectionLedger` relies on.
    """

    def __init__(
        self,
        index: int,
        *,
        timer_ratio: int = 1,
        approximate: bool = False,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.index = index
        # Same logical site on every replica (see DetectionShard): timer
        # stamps must stay comparable across an elastic re-home, and the
        # physical shard index travels in the detection rows instead.
        self.detector = Detector(
            site="shard",
            timer_ratio=timer_ratio,
            instrumentation=instrumentation,
        )
        self.approximate = approximate
        self.stabilizer: ApproximateStabilizer | None = (
            ApproximateStabilizer(
                self.detector,
                sites=[],
                auto_sites=True,
                instrumentation=instrumentation,
            )
            if approximate
            else None
        )
        self.applied_seq = 0

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> None:
        self.detector.register(expression, name=name, context=context)

    def apply(self, entry: WalEntry) -> list[TaggedDetection]:
        """Apply one WAL entry; returns the tagged detections it fired.

        An approximate replica applies the same entries through its
        stabilizer: events feed the shadow engine eagerly (tentatives)
        and advance-entries are the drain-horizon promise that closes
        the watermark frontier (confirmations and retractions).  The
        verdict stream is a pure function of the entry sequence, so
        replay after a crash re-emits the identical tagged verdicts —
        including retractions — and the ledger's ``(seq, k)`` marks
        deduplicate them.
        """
        stabilizer = self.stabilizer
        if stabilizer is not None:
            verdicts: list[VerdictDetection] = []
            if entry.kind == KIND_EVENT:
                event = entry.event
                verdicts.extend(stabilizer.advance_shadow(event.granule))
                verdicts.extend(stabilizer.offer(event.occurrence()))
            else:
                verdicts.extend(stabilizer.advance_shadow(entry.granule))
                verdicts.extend(stabilizer.announce_all(entry.granule))
            verdicts.extend(stabilizer.advance_exact())
            self.applied_seq = entry.seq
            return [
                TaggedDetection(entry.seq, k, verdict.detection, verdict)
                for k, verdict in enumerate(verdicts)
            ]
        detector = self.detector
        detections: list[Detection] = []
        if entry.kind == KIND_EVENT:
            event = entry.event
            if event.granule > detector.now_global:
                detections.extend(detector.advance_time(event.granule))
            detections.extend(detector.feed(event.occurrence()))
        else:
            if entry.granule > detector.now_global:
                detections.extend(detector.advance_time(entry.granule))
        self.applied_seq = entry.seq
        return [
            TaggedDetection(entry.seq, k, detection)
            for k, detection in enumerate(detections)
        ]

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint: the applied watermark plus the detector state."""
        if self.approximate:
            raise ReproError(
                "approximate replicas do not checkpoint: recovery is a "
                "full-WAL replay (verdict emission is deterministic and "
                "the ledger deduplicates)"
            )
        return {
            "seq": self.applied_seq,
            "index": self.index,
            "detector": snapshot_detector(self.detector),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        if self.approximate:
            raise ReproError(
                "approximate replicas rebuild from the WAL, not from "
                "checkpoints"
            )
        if int(state.get("index", self.index)) != self.index:
            raise ReproError(
                f"checkpoint belongs to shard {state['index']}, "
                f"this is shard {self.index}"
            )
        restore_detector(self.detector, dict(state["detector"]))
        self.applied_seq = int(state["seq"])


class DetectionLedger:
    """Exactly-once detection collection over at-least-once replay.

    Replicas apply entries in sequence order and tag detections with
    ``(seq, k)``; replay after failover re-emits a *prefix-identical*
    tagged stream.  Keeping one high-water mark per shard therefore
    suffices: a tag at or below the mark has already been collected.
    """

    def __init__(self) -> None:
        self._marks: dict[int, tuple[int, int]] = {}
        self.accepted = 0
        self.duplicates = 0

    def offer(self, shard: int, seq: int, k: int) -> bool:
        """True exactly once per (shard, seq, k); False for replays."""
        mark = self._marks.get(shard, (0, -1))
        if (seq, k) <= mark:
            self.duplicates += 1
            return False
        self._marks[shard] = (seq, k)
        self.accepted += 1
        return True


# --- the in-process failover harness ----------------------------------------


class LocalFailoverCluster(ClusterAdmin):
    """The failover path (WAL -> checkpoint -> replay -> ledger) in-process.

    Semantically identical to :class:`ClusterSupervisor` minus the OS
    process boundary: a *kill* discards the shard's replica object
    outright (state, open granules, everything) and rebuilds it from the
    last intact checkpoint plus the WAL tail.  Deterministic and fast —
    this is what the conformance ``failover`` check runs per case and
    what ``bench_serve_failover`` / ``bench_serve_rebalance`` measure.

    Implements :class:`~repro.serve.admin.ClusterAdmin`: :meth:`scale`
    re-hashes the rules onto a new shard count at the current granule
    boundary and migrates detector state; :meth:`lose` is the permanent
    failure of one shard — its in-memory replica is discarded, its
    state recovered from the durable checkpoint + WAL (exactly-once via
    the ledger), and its rules re-homed onto the survivors.
    """

    def __init__(
        self,
        shards: int,
        *,
        salt: int = 0,
        timer_ratio: int = 1,
        checkpoint_every: int = 8,
        fault_plan: FaultPlan | None = None,
        codec: str | None = None,
        approximate: bool = False,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if checkpoint_every <= 0:
            raise ReproError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.router = EventRouter(shards, salt=salt)
        self.timer_ratio = timer_ratio
        self.approximate = approximate
        self.checkpoint_every = checkpoint_every
        self.faults = FaultInjector(fault_plan)
        self.obs = resolve(instrumentation)
        self._instrumentation = instrumentation
        self._rules: dict[str, tuple[EventExpression | str, Context]] = {}
        # With a codec, every WAL entry is round-tripped through that
        # encoding before it lands in the replay list — so the failover
        # path replays exactly what the wire format preserves.
        self._wals: dict[int, ShardWAL] = {
            index: ShardWAL(codec=codec) for index in range(shards)
        }
        self._stores: dict[int, CheckpointStore] = {
            index: CheckpointStore() for index in range(shards)
        }
        self._replicas: dict[int, ShardReplica] = {}
        self.ledger = DetectionLedger()
        self._detections: dict[str, list[Any]] = {}
        #: Approximate mode: every ledger-accepted verdict emission, in
        #: acceptance order (replayed duplicates excluded).
        self._verdicts: list[TaggedDetection] = []
        self._codec = codec
        self._last_granule: int | None = None
        #: granule -> shard-map epochs its events routed under.  The
        #: scale-at-boundary contract keeps every value a singleton —
        #: the property the Hypothesis epoch tests pin down.
        self.granule_epochs: dict[int, set[int]] = {}
        self.restarts = 0
        self.replayed = 0
        self.checkpoints = 0
        self.events_applied = 0
        self.rebalances = 0

    # --- registration ----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
        *,
        salt: int | None = None,
    ) -> int:
        """Place and compile one rule; ``salt`` is the per-rule routing
        override the multi-tenant tier hashes tenants under (it
        survives :meth:`scale`'s re-hash)."""
        index = self.router.assign(name, salt=salt)
        self._rules[name] = (expression, context)
        self._replica(index).register(expression, name, context)
        self._bind()
        return index

    def _bind(self) -> None:
        by_shard: dict[int, set[str]] = {}
        for name, (expression, _) in self._rules.items():
            parsed = (
                parse_expression(expression)
                if isinstance(expression, str)
                else expression
            )
            by_shard.setdefault(self.router.assignments[name], set()).update(
                parsed.primitive_types()
            )
        self.router.bind(by_shard)

    def _replica(self, index: int) -> ShardReplica:
        replica = self._replicas.get(index)
        if replica is None:
            replica = ShardReplica(
                index,
                timer_ratio=self.timer_ratio,
                approximate=self.approximate,
                instrumentation=self._instrumentation,
            )
            for name in self.router.rules_of(index):
                expression, context = self._rules[name]
                replica.register(expression, name, context)
            self._replicas[index] = replica
        return replica

    # --- the ingest/apply path -------------------------------------------

    def ingest(self, event: ServeEvent) -> None:
        granule = event.granule
        self._last_granule = (
            granule
            if self._last_granule is None
            else max(self._last_granule, granule)
        )
        self.granule_epochs.setdefault(granule, set()).add(self.router.epoch)
        for index in self.router.route(event.event_type):
            entry = self._wals[index].append_event(event)
            self._apply(index, entry)
            self.events_applied += 1
            if entry.seq % self.checkpoint_every == 0:
                self._checkpoint(index)
            if self.faults.should_kill(index, entry.seq):
                self.crash(index)

    def advance(self, granule: int) -> None:
        """Drain-time clock advance on every shard (logged + applied)."""
        self._last_granule = (
            granule
            if self._last_granule is None
            else max(self._last_granule, granule)
        )
        for index, wal in self._wals.items():
            entry = wal.append_advance(granule)
            self._apply(index, entry)

    def _apply(self, index: int, entry: WalEntry) -> None:
        for tagged in self._replica(index).apply(entry):
            if self.ledger.offer(index, tagged.seq, tagged.k):
                if tagged.verdict is not None:
                    self._verdicts.append(tagged)
                if (
                    tagged.verdict is None
                    or tagged.verdict.verdict is Verdict.CONFIRMED
                ):
                    # detections_of stays the exact multiset in both
                    # modes: plain detections, or confirmed verdicts.
                    self._detections.setdefault(
                        tagged.detection.name, []
                    ).append(tagged.detection.occurrence)

    def _checkpoint(self, index: int) -> None:
        if self.approximate:
            # No snapshot format covers the stabilizer's held
            # occurrences and pending tentatives; approximate recovery
            # replays the full WAL instead (see ShardReplica.apply), so
            # the WAL is never truncated here.
            return
        store = self._stores[index]
        store.save(
            self._replica(index).snapshot(),
            corrupt=self.faults.take_corrupt_checkpoint(index),
        )
        self._wals[index].truncate(store.retain_after)
        self.checkpoints += 1
        if self.obs.enabled:
            self.obs.counter("serve.failover.checkpoints").inc()

    # --- failover --------------------------------------------------------

    def crash(self, index: int) -> int:
        """Kill the shard (discard its replica) and recover it.

        Returns the number of WAL entries replayed.  Detections the dead
        replica had already emitted are deduplicated by the ledger;
        detections it emitted *after* the last checkpoint but before the
        crash are re-derived by the replay — either way the collected
        multiset is exactly the fault-free one.
        """
        self._replicas.pop(index, None)
        self.restarts += 1
        state = self._stores[index].load()
        replica = self._replica(index)
        after = 0
        if state is not None:
            replica.restore(state)
            after = replica.applied_seq
        tail = self._wals[index].tail(after)
        for entry in tail:
            self._apply(index, entry)
        self.replayed += len(tail)
        if self.obs.enabled:
            self.obs.counter("serve.failover.restarts").inc()
            self.obs.histogram("serve.failover.replay_events").observe(
                len(tail)
            )
        return len(tail)

    # --- re-balancing (the ClusterAdmin surface) -------------------------

    def scale(self, shards: int) -> ScaleReport:
        """Re-hash every rule onto ``shards`` shards at the boundary.

        All shards first advance (logged) to the highest granule seen,
        so their detectors sit *between* granules — the point where
        Def 4.4 makes per-node state migratable.  Rules are re-assigned
        by the successor router (epoch + 1), each new shard's detector
        is grafted from the old replicas by shared ``(expression,
        context)`` identity, and fresh WALs are seeded past the global
        seq high-water so the detection ledger's existing per-shard
        marks keep deduplicating without a reset.
        """
        if shards <= 0:
            raise ReproError(f"shard count must be positive, got {shards}")
        if self.approximate:
            raise ReproError(
                "approximate clusters cannot re-balance: stabilizer "
                "state (held occurrences, pending tentatives) has no "
                "migration path yet"
            )
        boundary = self._last_granule
        if boundary is not None:
            self.advance(boundary)
        old_shards = self.router.shards
        old_router = self.router
        sources = {
            index: self._replica(index).detector
            for index in range(old_shards)
        }
        global_seq = max(
            (wal.last_seq for wal in self._wals.values()), default=0
        )
        successor = old_router.rehash(shards)
        replicas: dict[int, ShardReplica] = {}
        for index in range(shards):
            replica = ShardReplica(
                index,
                timer_ratio=self.timer_ratio,
                instrumentation=self._instrumentation,
            )
            for name in successor.rules_of(index):
                expression, context = self._rules[name]
                replica.register(expression, name, context)
            graft_detector(replica.detector, sources)
            replica.applied_seq = global_seq
            replicas[index] = replica
        for wal in self._wals.values():
            wal.close()
        self._wals = {
            index: ShardWAL(codec=self._codec) for index in range(shards)
        }
        self._stores = {
            index: CheckpointStore() for index in range(shards)
        }
        for index, wal in self._wals.items():
            wal.seed_seq(global_seq)
            self._stores[index].save(replicas[index].snapshot())
        self._replicas = replicas
        self.router = successor
        self._bind()
        self.rebalances += 1
        if self.obs.enabled:
            self.obs.counter("serve.rebalance.scales").inc()
        return ScaleReport(
            from_shards=old_shards,
            to_shards=shards,
            epoch=successor.epoch,
            boundary=boundary,
            seq=global_seq,
            moved_rules={
                name: (old_router.assignments[name], home)
                for name, home in successor.assignments.items()
                if old_router.assignments.get(name) != home
            },
        )

    def lose(self, index: int) -> ScaleReport:
        """Permanently lose one shard; re-home its rules to survivors.

        The in-memory replica is discarded (everything since the last
        checkpoint exists only in the WAL), rebuilt from durable state
        with the ledger deduplicating replayed detections, and the
        whole cluster re-hashes onto one fewer shard.
        """
        if not 0 <= index < self.router.shards:
            raise ReproError(f"shard index {index} out of range")
        if self.router.shards < 2:
            raise ReproError("cannot lose the only remaining shard")
        self.crash(index)
        return self.scale(self.router.shards - 1)

    def revive(self, shard: int) -> bool:
        """In-process shards never park; recovery is immediate."""
        self.crash(shard)
        return True

    def drain(self, horizon: int | None = None) -> list[ShardUnavailable]:
        """Advance every shard to ``horizon`` (the in-process barrier).

        In-process application is synchronous, so after :meth:`advance`
        every WAL entry has been applied; the return value is always
        empty, matching the supervisor's healthy-path contract.
        """
        if horizon is not None:
            self.advance(horizon)
        return []

    def status(self) -> ClusterStatus:
        return ClusterStatus(
            shards=self.router.shards,
            epoch=self.router.epoch,
            transport="in-process",
            unavailable={},
            parked=0,
            restarts=self.restarts,
            checkpoints=self.checkpoints,
            detections=self.ledger.accepted,
        )

    # --- results ---------------------------------------------------------

    def detections_of(self, name: str):
        """Collected occurrences of one rule (exactly-once).

        In approximate mode this is the CONFIRMED multiset — the same
        exact-multiset contract as everywhere else.
        """
        if name not in self._rules:
            raise ReproError(f"no rule named {name!r} is registered")
        return list(self._detections.get(name, ()))

    def verdicts_of(self, name: str) -> list[VerdictDetection]:
        """One rule's ledger-accepted verdict stream (approximate mode).

        Exactly-once across crash/replay: a replayed emission carries
        the same ``(seq, k)`` tag, so the ledger filters it before it
        reaches this list.
        """
        if name not in self._rules:
            raise ReproError(f"no rule named {name!r} is registered")
        return [
            tagged.verdict
            for tagged in self._verdicts
            if tagged.verdict is not None
            and tagged.verdict.name == name
        ]


def replay_with_failover(
    rules: Mapping[str, EventExpression | str],
    events,
    *,
    shards: int = 2,
    salt: int = 0,
    timer_ratio: int = 1,
    context: Context = Context.UNRESTRICTED,
    horizon: int | None = None,
    checkpoint_every: int = 8,
    fault_plan: FaultPlan | None = None,
    codec: str | None = None,
    approximate: bool = False,
    scale_plan: tuple[tuple[int, int], ...] = (),
    lose: tuple[tuple[int, int], ...] = (),
) -> LocalFailoverCluster:
    """Run a finite stream through a faulted in-process cluster.

    The convenience mirror of :func:`repro.serve.runtime.serve_events`
    for the failover harness — registers, ingests, advances to
    ``horizon``, returns the cluster for inspection.  ``codec`` selects
    the WAL storage encoding (``"binary"`` replays through the binary
    wire format); ``approximate`` runs every replica in anytime mode,
    with verdict emissions — retractions included — riding the same
    ``(seq, k)`` exactly-once replay discipline as detections.

    ``scale_plan`` is a schedule of ``(after_count, shards)`` pairs:
    once ``after_count`` events have been ingested the cluster
    re-balances to ``shards`` shards.  ``lose`` is a schedule of
    ``(after_count, shard)`` pairs permanently losing one shard (its
    rules re-home onto the survivors).  Both migrate state at the
    current granule boundary, so the collected multiset must equal the
    fault-free single-process run — the elastic leg of the conformance
    ``failover`` check.
    """
    cluster = LocalFailoverCluster(
        shards,
        salt=salt,
        timer_ratio=timer_ratio,
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan,
        codec=codec,
        approximate=approximate,
    )
    for name, expression in rules.items():
        cluster.register(expression, name, context)
    scales = sorted(scale_plan)
    losses = sorted(lose)
    count = 0
    for event in events:
        cluster.ingest(event)
        count += 1
        while scales and scales[0][0] <= count:
            cluster.scale(scales.pop(0)[1])
        while losses and losses[0][0] <= count:
            cluster.lose(losses.pop(0)[1] % cluster.router.shards)
    for _, shards_after in scales:
        cluster.scale(shards_after)
    for _, shard in losses:
        cluster.lose(shard % cluster.router.shards)
    if horizon is not None:
        cluster.advance(horizon)
    return cluster


# --- the worker process side -------------------------------------------------


class _ShardSession:
    """One worker incarnation: a replica driven by inbound control frames.

    The transport-independent half of the worker: :func:`run_worker`
    wraps it behind stdin/stdout pipes, :func:`serve_worker_listener`
    behind a TCP connection.  ``handle`` processes one frame and emits
    responses through the supplied callable; it returns False when the
    session should end (a ``stop`` frame).
    """

    def __init__(self, shard: int, *, timer_ratio: int = 1) -> None:
        self.shard = shard
        self.replica = ShardReplica(shard, timer_ratio=timer_ratio)

    def handle(
        self, frame: dict[str, Any], emit: Callable[..., None]
    ) -> bool:
        replica = self.replica
        op = frame["op"]
        if op == "register":
            replica.register(
                str(frame["expression"]),
                name=str(frame["name"]),
                context=Context(frame.get("context", "unrestricted")),
            )
        elif op == "restore":
            replica.restore(frame["state"])
            emit("ack", seq=replica.applied_seq)
        elif op in ("event", "advance"):
            entry = WalEntry.from_dict(
                {
                    "seq": frame["seq"],
                    "kind": frame["op"],
                    "event": frame.get("event"),
                    "granule": frame.get("granule"),
                }
            )
            for tagged in replica.apply(entry):
                emit(
                    "detection",
                    seq=tagged.seq,
                    k=tagged.k,
                    row=detection_to_json(self.shard, tagged.detection),
                )
            emit("ack", seq=entry.seq)
        elif op == "checkpoint":
            emit(
                "checkpoint_state",
                seq=replica.applied_seq,
                state=replica.snapshot(),
            )
        elif op == "handoff":
            # State migration for scale(): like checkpoint, but tagged
            # so the supervisor resolves its pending handoff instead of
            # (only) persisting a routine checkpoint.
            emit(
                "checkpoint_state",
                seq=replica.applied_seq,
                state=replica.snapshot(),
                handoff=True,
            )
        elif op == "stop":
            return False
        else:  # an op valid on the wire but not inbound (beat/ack/...)
            emit("error", message=f"unexpected inbound op {op!r}")
        return True


def run_worker(
    shard: int,
    *,
    timer_ratio: int = 1,
    heartbeat_interval: float = 0.25,
    in_stream: IO[bytes] | None = None,
    out_stream: IO[str] | None = None,
) -> int:
    """The ``repro serve-worker`` loop: one replica behind JSONL frames.

    Reads control frames from ``in_stream`` (default: raw stdin), writes
    response frames to ``out_stream`` (default: stdout, flushed per
    line).  Emits a ``beat`` frame every ``heartbeat_interval`` seconds
    even while idle (using ``select`` on the input fd so buffered lines
    are never stranded).  A malformed or failing frame produces one
    structured ``error`` frame and the loop survives — the supervisor
    decides whether to kill.  EOF on stdin is the shutdown signal.
    """
    import select as select_mod

    session = _ShardSession(shard, timer_ratio=timer_ratio)
    replica = session.replica
    out = out_stream if out_stream is not None else sys.stdout

    def emit(op: str, **fields: Any) -> None:
        # Beats carry the worker's send-time clock so the supervisor's
        # liveness monitor can separate transport latency from silence.
        if op == "beat":
            fields.setdefault("t", time.monotonic())
        out.write(frame_to_line(op, **fields) + "\n")
        out.flush()

    def handle(frame: dict[str, Any]) -> bool:
        return session.handle(frame, emit)

    emit("beat", seq=0)
    source = in_stream if in_stream is not None else sys.stdin.buffer
    try:
        fd = source.fileno()  # io.UnsupportedOperation subclasses OSError
    except (AttributeError, OSError, ValueError):
        fd = None
    buffer = b""
    last_beat = time.monotonic()
    running = True
    while running:
        newline = buffer.find(b"\n")
        if newline < 0:
            if fd is not None:
                ready, _, _ = select_mod.select([fd], [], [], heartbeat_interval)
                if not ready:
                    emit("beat", seq=replica.applied_seq)
                    last_beat = time.monotonic()
                    continue
                chunk = os.read(fd, 1 << 16)
            else:  # in-memory stream (tests): no select, just read
                chunk = source.read(1 << 16)
            if not chunk:
                break
            buffer += chunk
            continue
        line, buffer = buffer[:newline], buffer[newline + 1 :]
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            frame = parse_frame(text)
        except ReproError as error:
            emit("error", message=str(error))
            continue
        try:
            running = handle(frame)
        except ReproError as error:
            emit("error", message=str(error))
        except Exception as error:  # noqa: BLE001 - keep the loop alive
            emit("error", message=f"{type(error).__name__}: {error}")
        if time.monotonic() - last_beat >= heartbeat_interval:
            emit("beat", seq=replica.applied_seq)
            last_beat = time.monotonic()
    return 0


class _HeldSession:
    """A listener-side resumable session: replica + frame ledger.

    Lives in the listener's session table across connections.  While a
    connection is attached, ``owner`` is that connection's id; after a
    disconnect the session survives until ``expires_at`` (the grace
    window), within which a resume ``hello`` re-attaches it.
    """

    __slots__ = ("session", "half", "owner", "expires_at", "grace")

    def __init__(
        self, session: _ShardSession, grace: float
    ) -> None:
        from repro.serve.session import SessionHalf

        self.session = session
        self.half = SessionHalf()
        self.owner: int | None = None
        self.expires_at: float | None = None
        self.grace = grace


async def serve_worker_listener(
    host: str,
    port: int,
    *,
    timer_ratio: int = 1,
    heartbeat_interval: float = 0.25,
    codec: str = "auto",
    announce: Callable[[str], None] | None = None,
    session_grace: float | None = None,
) -> "asyncio.Server":
    """A TCP worker host: ``repro serve-worker --listen HOST:PORT``.

    Each accepted connection opens with a JSONL ``hello`` naming the
    shard index and offering codecs (plus ``timer_ratio``/
    ``heartbeat_interval`` overrides), answered by a JSONL
    ``hello_ack`` naming the codec this listener chose — after which
    both directions speak the negotiated codec.  The connection then
    runs the exact :class:`_ShardSession` loop the subprocess worker
    runs, with periodic beats.

    A hello that carries a ``session`` id makes the incarnation
    *resumable*: frames run through a
    :class:`~repro.serve.session.SessionHalf` ledger, and when the
    connection drops the replica is held for a grace window
    (``session_grace``, overridable per hello) instead of being
    discarded.  A reconnect hello with ``resume: true`` and the same id
    re-attaches the live replica — the ``hello_ack`` answers
    ``resumed: true`` plus the worker's ``recv`` watermark and both
    sides replay their unacknowledged buffers, so a severed-and-healed
    link is invisible to detection.  Without a session id (legacy
    supervisors), dropping the connection discards the replica exactly
    as before, and a kill + reconnect is semantically a respawn.

    One listener hosts any number of shards (one per connection), which
    is what lets ``scale(n)`` grow a cluster without new machines.

    Returns the started :class:`asyncio.Server`; the caller owns its
    lifetime (``serve_forever`` in the CLI, ``close`` in tests).
    ``announce`` is called with the bound ``host:port`` once listening —
    the CLI prints it as a JSON line so scripts can use port 0.
    """
    from repro.serve.protocol import choose_codec, get_codec
    from repro.serve.session import DEFAULT_SESSION_GRACE

    binary = get_codec("binary")
    default_grace = (
        session_grace if session_grace is not None else DEFAULT_SESSION_GRACE
    )
    sessions: dict[str, _HeldSession] = {}
    connection_counter = itertools.count(1)

    def sweep(now: float) -> None:
        for sid in [
            sid
            for sid, held in sessions.items()
            if held.expires_at is not None and now > held.expires_at
        ]:
            del sessions[sid]

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from repro.serve.protocol import StreamDecoder

        decoder = StreamDecoder(
            max_line_bytes=_WORKER_FRAME_LIMIT,
            max_frame_bytes=_WORKER_FRAME_LIMIT,
        )
        conn_id = next(connection_counter)
        session: _ShardSession | None = None
        held: _HeldSession | None = None
        chosen = "jsonl"
        stopped = False

        def write_wire(frame: dict[str, Any]) -> None:
            # A severed transport drops everything anyway; skipping the
            # write spares asyncio's per-call connection-lost warning.
            # Session-stamped frames are already buffered in the session
            # half, so they replay on resume; the rest dies with the link.
            if writer.transport.is_closing():
                return
            if chosen == "binary":
                writer.write(binary.encode_control(frame))
            else:
                writer.write(
                    (json.dumps(frame, sort_keys=True) + "\n").encode("utf-8")
                )

        def emit(op: str, **fields: Any) -> None:
            if op == "beat":
                fields.setdefault("t", time.monotonic())
            frame = {"op": op, **fields}
            if held is not None:
                frame = held.half.stamp(frame)
            write_wire(frame)

        async def beat_loop(interval: float) -> None:
            try:
                while True:
                    await asyncio.sleep(interval)
                    emit("beat", seq=session.replica.applied_seq)
                    await writer.drain()
            except (OSError, ConnectionError):
                pass  # link died between beats; the read loop holds the session

        beats: asyncio.Task | None = None
        try:
            running = True
            while running:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                for unit in decoder.feed(chunk):
                    if unit.kind == "error":
                        emit("error", message=unit.message)
                        continue
                    try:
                        if unit.kind == "frame":
                            frame = binary.decode_control(bytes(unit.payload))
                        else:
                            frame = parse_frame(
                                unit.payload.decode("utf-8", errors="replace")
                            )
                    except Exception as error:  # noqa: BLE001 - bad frame
                        emit("error", message=str(error))
                        continue
                    if session is None:
                        # Connection setup: hello before anything else.
                        if frame.get("op") != "hello":
                            emit(
                                "error",
                                message="expected hello as the first frame",
                            )
                            running = False
                            break
                        chosen = choose_codec(
                            codec, [str(c) for c in frame.get("codecs", [])]
                        ).name
                        now = time.monotonic()
                        sweep(now)
                        sid = frame.get("session")
                        resumed = False
                        if sid is not None and frame.get("resume"):
                            candidate = sessions.get(str(sid))
                            if candidate is None:
                                # Grace expired (or the listener itself
                                # restarted): the replica is gone, and
                                # the supervisor must fall back to a
                                # full respawn.
                                writer.write(
                                    (
                                        frame_to_line(
                                            "hello_ack",
                                            codec=chosen,
                                            version=1,
                                            resumed=False,
                                        )
                                        + "\n"
                                    ).encode("utf-8")
                                )
                                running = False
                                break
                            held = candidate
                            held.owner = conn_id
                            held.expires_at = None
                            session = held.session
                            resumed = True
                        else:
                            session = _ShardSession(
                                int(frame.get("shard", 0)),
                                timer_ratio=int(
                                    frame.get("timer_ratio", timer_ratio)
                                ),
                            )
                            if sid is not None:
                                held = _HeldSession(
                                    session,
                                    float(
                                        frame.get(
                                            "session_grace", default_grace
                                        )
                                    ),
                                )
                                held.owner = conn_id
                                sessions[str(sid)] = held
                        interval = float(
                            frame.get(
                                "heartbeat_interval", heartbeat_interval
                            )
                        )
                        # The ack itself is always a JSONL line (readable
                        # before negotiation); the switch happens after.
                        ack_fields: dict[str, Any] = {
                            "codec": chosen, "version": 1,
                        }
                        if held is not None:
                            ack_fields["resumed"] = resumed
                            ack_fields["recv"] = held.half.recv_n
                        writer.write(
                            (
                                frame_to_line("hello_ack", **ack_fields)
                                + "\n"
                            ).encode("utf-8")
                        )
                        if resumed:
                            # Replay everything the supervisor never
                            # saw (already numbered — not re-stamped).
                            for replay in held.half.replay_after(
                                int(frame.get("recv", 0))
                            ):
                                write_wire(replay)
                        emit("beat", seq=session.replica.applied_seq)
                        beats = asyncio.get_running_loop().create_task(
                            beat_loop(interval)
                        )
                        continue
                    if held is not None:
                        verdict = held.half.receive(frame)
                        if verdict == "duplicate":
                            continue
                        if verdict == "gap":
                            write_wire(held.half.rewind_frame())
                            continue
                        if frame.get("op") == "rewind":
                            for replay in held.half.replay_after(
                                int(frame["have"])
                            ):
                                write_wire(replay)
                            continue
                    try:
                        running = session.handle(frame, emit)
                    except ReproError as error:
                        emit("error", message=str(error))
                    except Exception as error:  # noqa: BLE001 - keep alive
                        emit("error", message=f"{type(error).__name__}: {error}")
                    if not running:
                        stopped = True
                        break
                await writer.drain()
        except (OSError, ConnectionError):  # peer went away mid-write
            pass
        finally:
            if beats is not None:
                beats.cancel()
            if held is not None and held.owner == conn_id:
                if stopped:
                    # Clean shutdown: the session is finished, not lost.
                    for key in [k for k, h in sessions.items() if h is held]:
                        del sessions[key]
                else:
                    # Hold the replica for the grace window: a resuming
                    # supervisor reclaims it, everyone else times out.
                    held.owner = None
                    held.expires_at = time.monotonic() + held.grace
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    server = await asyncio.start_server(
        on_connection, host, port, limit=_WORKER_FRAME_LIMIT
    )
    if announce is not None:
        bound = server.sockets[0].getsockname()
        announce(f"{bound[0]}:{bound[1]}")
    return server


# --- the supervisor ----------------------------------------------------------


_STARTUP_TIMEOUT = 30.0
"""Seconds a freshly spawned worker gets to emit its first frame."""

_WORKER_FRAME_LIMIT = 64 * MAX_LINE_BYTES
"""Stream limit for frames read *from* a worker.

``checkpoint_state`` and ``detection`` frames wrap whole detector
snapshots and merged parameter maps, so they can legitimately exceed
the 1 MiB event-line bound; giving the worker's stdout a much larger
limit keeps them deliverable.  A frame past even this limit is
discarded by the stream reader and counted in
:attr:`ClusterSupervisor.frames_dropped`.
"""


class _Worker:
    """Supervisor-side handle of one live worker incarnation."""

    __slots__ = (
        "link", "reader", "dead", "acked_seq", "applied", "beats_seen",
        "started", "sent_seq", "handoff",
    )

    def __init__(self, link: WorkerLink) -> None:
        self.link = link
        self.reader: asyncio.Task | None = None
        self.dead = False
        self.acked_seq = 0
        self.applied = asyncio.Event()
        self.beats_seen = 0
        self.started = asyncio.Event()
        # Highest WAL seq already sent to this worker (restore replay
        # included) — _deliver skips entries at or below it, so an
        # entry covered by a recovery's tail replay is never re-sent.
        self.sent_seq = 0
        # Pending scale() handoff: resolved with the worker's migration
        # state (or None when the channel dies first).
        self.handoff: asyncio.Future | None = None

    @property
    def process(self):
        """The underlying OS process of a subprocess-backed worker.

        Kept for the tests (and callers) that reach through the handle
        to kill the process directly; TCP-backed workers have none.
        """
        return getattr(self.link, "process", None)


class ClusterSupervisor(ClusterAdmin):
    """Runs each shard on a supervised worker behind a transport.

    Configure through ``config=ServeConfig(...)`` — the relevant fields
    are ``procs`` (worker count; falls back to ``shards``), ``salt``,
    ``timer_ratio``, ``state_dir`` (required), ``heartbeat_interval``,
    ``miss_threshold``, ``retry_budget``, ``checkpoint_every``,
    ``seed``, ``codec`` (``"binary"`` stores the WALs in binary
    frames, so failover replay consumes the wire encoding),
    ``transport``/``workers`` (remote TCP shard endpoints instead of
    local subprocess workers), and ``rebalance_grace`` (``None`` parks
    a shard past its retry budget until :meth:`revive`; a float
    automatically re-homes its rules onto the surviving shards).  The
    individual keyword arguments are deprecated aliases; mixing them
    with ``config=`` raises ``TypeError``.

    Implements :class:`~repro.serve.admin.ClusterAdmin`: :meth:`scale`
    re-balances the live cluster onto a new worker count at the current
    granule boundary, migrating detector state through checkpoint
    handoff frames (falling back to an in-process rebuild from WAL +
    checkpoint, deduplicated by the ledger, for any worker that dies
    mid-handoff).

    ``state_dir`` holds per-shard WAL and checkpoint files (created if
    missing); a supervisor restarted over the same directory recovers
    parked and unreplayed events.  ``fault_plan`` (deterministic fault
    injection for tests and chaos CI) and ``on_detection`` (the
    streaming callback of ``repro serve --procs --stdin``) are runtime
    collaborators, not configuration — they stay regular parameters.
    """

    def __init__(
        self,
        shards: int = _UNSET,
        *,
        salt: int = _UNSET,
        timer_ratio: int = _UNSET,
        state_dir: str = _UNSET,
        heartbeat_interval: float = _UNSET,
        miss_threshold: int = _UNSET,
        retry_budget: int = _UNSET,
        checkpoint_every: int = _UNSET,
        seed: int = _UNSET,
        config: "ServeConfig | None" = None,
        fault_plan: FaultPlan | None = None,
        net_fault_plan: "NetFaultPlan | None" = None,
        instrumentation: Instrumentation | None = None,
        on_detection: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("shards", shards),
                ("salt", salt),
                ("timer_ratio", timer_ratio),
                ("state_dir", state_dir),
                ("heartbeat_interval", heartbeat_interval),
                ("miss_threshold", miss_threshold),
                ("retry_budget", retry_budget),
                ("checkpoint_every", checkpoint_every),
                ("seed", seed),
            )
            if value is not _UNSET
        }
        # The legacy signature's default checkpoint cadence (64) is the
        # ServeConfig default too, so folding legacy keywords into a
        # config is value-preserving.
        config = _resolve_config("ClusterSupervisor", config, legacy)
        self.config = config
        procs = config.procs if config.procs is not None else config.shards
        if config.state_dir is None:
            raise ReproError(
                "ClusterSupervisor needs a state_dir "
                "(set it on the ServeConfig)"
            )
        state_dir = config.state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.router = EventRouter(procs, salt=config.salt)
        self.timer_ratio = config.timer_ratio
        self.state_dir = state_dir
        self.retry_budget = config.retry_budget
        self.checkpoint_every = config.checkpoint_every
        self.monitor = HeartbeatMonitor(
            config.heartbeat_interval, config.miss_threshold
        )
        self.backoff = Backoff(seed=config.seed)
        self.faults = FaultInjector(fault_plan)
        self.obs = resolve(instrumentation)
        self.on_detection = on_detection
        self._rules: dict[str, tuple[str, Context]] = {}
        # "binary" stores WAL entries as version-1 frames; "jsonl" and
        # "auto" keep the legacy text layout (compatible with existing
        # state directories — binary is an explicit storage upgrade).
        wal_codec = "binary" if config.codec == "binary" else None
        self._wal_codec = wal_codec
        shards = procs
        self._wals: dict[int, ShardWAL] = {
            k: ShardWAL(
                os.path.join(state_dir, f"shard{k}.wal"), codec=wal_codec
            )
            for k in range(shards)
        }
        self._stores: dict[int, CheckpointStore] = {
            k: CheckpointStore(os.path.join(state_dir, f"shard{k}.ckpt"))
            for k in range(shards)
        }
        # A restarted supervisor must never number new entries below
        # the durable checkpoint watermark (they would be invisible to
        # recovery's tail replay), even if the WAL file is gone.
        for k, wal in self._wals.items():
            state = self._stores[k].load()
            wal.seed_seq(
                max(
                    int(state.get("seq", 0)) if state is not None else 0,
                    self._stores[k].retain_after,
                )
            )
        self.transport = resolve_transport(
            config.transport,
            config.workers,
            codec=config.codec,
            retry_policy=config.retry_policy,
            session_grace=config.session_grace,
            seed=config.seed,
        )
        if net_fault_plan is not None:
            from repro.serve.netfault import install_fault_filter

            install_fault_filter(self.transport, net_fault_plan)
        torn = sum(wal.torn_tails for wal in self._wals.values())
        if torn:
            self.obs.counter("serve.failover.wal_torn_tail").inc(torn)
        self.rebalance_grace = config.rebalance_grace
        self._workers: dict[int, _Worker] = {}
        self._locks: dict[int, asyncio.Lock] = {}
        self._unavailable: dict[int, str] = {}
        self.ledger = DetectionLedger()
        self._detections: dict[str, list[dict[str, Any]]] = {}
        self._monitor_task: asyncio.Task | None = None
        self._stopping = False
        self._last_granule: int | None = None
        #: granule -> shard-map epochs its events routed under (always
        #: singletons: scale() happens between granules, and one
        #: event's whole fan-out is appended under one epoch).
        self.granule_epochs: dict[int, set[int]] = {}
        # scale() must not interleave with ingest: the flag blocks new
        # batches synchronously, the event wakes them when done.
        self._scaling = False
        self._scale_done = asyncio.Event()
        self._scale_done.set()
        # Shards past their retry budget awaiting automatic re-homing
        # (only populated when rebalance_grace is not None).
        self._rehome_pending: set[int] = set()
        self._rehome_at = 0.0
        self.restarts = 0
        self.resumes = 0
        self.replayed = 0
        self.parked = 0
        self.checkpoints = 0
        self.events_ingested = 0
        self.events_unrouted = 0
        self.frames_dropped = 0
        self.rebalances = 0
        self.rehomes = 0

    # --- registration ----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> int:
        """Register one rule; returns the owning shard index.

        The expression is parsed here both to validate it before any
        worker sees it and to derive the routing subscription map (the
        parent holds no compiled detection graph — the workers do).
        """
        parsed = (
            parse_expression(expression)
            if isinstance(expression, str)
            else expression
        )
        index = self.router.assign(name)
        self._rules[name] = (str(parsed), context)
        self._bind()
        return index

    def _bind(self) -> None:
        by_shard: dict[int, set[str]] = {}
        for rule, (text, _) in self._rules.items():
            by_shard.setdefault(
                self.router.assignments[rule], set()
            ).update(parse_expression(text).primitive_types())
        self.router.bind(by_shard)

    def rule_names(self) -> list[str]:
        return sorted(self._rules)

    # --- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Spawn every worker (recovering any durable WAL/checkpoints)."""
        self._stopping = False
        for index in range(self.router.shards):
            await self._recover(index, count_restart=False)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor_loop(), name="repro-serve-cluster-monitor"
        )

    async def __aenter__(self) -> "ClusterSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # --- ingest / dispatch -----------------------------------------------

    async def ingest(self, event: ServeEvent) -> list[ShardUnavailable]:
        """Route one event; WAL-append, dispatch, inject planned faults.

        Returns the degradation signals (empty while everything is
        healthy).  Events for an unavailable shard are parked in its
        WAL; healthy shards are never blocked by a sick one.
        """
        while self._scaling:
            await self._scale_done.wait()
        targets = self.router.route(event.event_type)
        if not targets:
            self.events_unrouted += 1
            return []
        self.events_ingested += 1
        granule = event.granule
        self._last_granule = (
            granule
            if self._last_granule is None
            else max(self._last_granule, granule)
        )
        self.granule_epochs.setdefault(granule, set()).add(self.router.epoch)
        # Route + append for the whole fan-out synchronously (no awaits
        # in between): a concurrent scale() can only observe the event
        # fully logged under one epoch, never half-routed across two
        # shard maps.
        entries = [
            (index, self._wals[index].append_event(event))
            for index in targets
        ]
        signals: list[ShardUnavailable] = []
        for index, entry in entries:
            signal = await self._deliver(index, entry)
            if signal is not None:
                signals.append(signal)
        await self._maybe_rehome()
        return signals

    async def _deliver(
        self, index: int, entry: WalEntry
    ) -> ShardUnavailable | None:
        # The per-shard lock serializes dispatch with recovery: while a
        # respawn is mid register/restore/replay, a concurrent ingest
        # (the stdin pump keeps running while the monitor loop recovers
        # a shard) parks here instead of interleaving its event frame
        # into the replay stream.  The entry is already in the WAL, so
        # either the in-flight recovery's tail covers it (sent_seq then
        # says skip) or we send it now, strictly after the replay.
        if index >= self.router.shards:
            # The cluster scaled in under this batch's feet; the entry
            # was appended pre-scale and migrated with the old shard's
            # state, so there is nothing left to deliver.
            return None
        async with self._lock(index):
            if index in self._unavailable:
                self.parked += 1
                if self.obs.enabled:
                    self.obs.counter("serve.failover.parked").inc()
                return ShardUnavailable(
                    index, self._unavailable[index], self.parked
                )
            worker = self._workers.get(index)
            if worker is None or worker.dead:
                # Recovery replays the WAL tail, which includes this entry.
                if not await self._recover_locked(index):
                    self.parked += 1
                    return ShardUnavailable(
                        index, self._unavailable.get(index, "down"),
                        self.parked,
                    )
            elif entry.seq > worker.sent_seq:
                try:
                    await self._send(worker, entry.frame())
                    worker.sent_seq = entry.seq
                    if entry.seq % self.checkpoint_every == 0:
                        await self._send(worker, {"op": "checkpoint"})
                except (OSError, ConnectionError, BrokenPipeError):
                    worker.dead = True
                    if not await self._recover_locked(index):
                        self.parked += 1
                        return ShardUnavailable(
                            index, self._unavailable.get(index, "down"),
                            self.parked,
                        )
            if self.faults.should_kill(index, entry.seq):
                live = self._workers.get(index)
                if live is not None and not live.dead:
                    live.link.kill()
                    live.dead = True
            return None

    async def _send(self, worker: _Worker, frame: dict[str, Any]) -> None:
        await worker.link.send(frame)

    # --- worker output ---------------------------------------------------

    async def _read_loop(self, index: int, worker: _Worker) -> None:
        link = worker.link
        dropped = link.frames_dropped
        while True:
            frame = await link.read()
            if link.frames_dropped != dropped:
                # The link discarded oversized/undecodable frames.  Stay
                # connected, but surface the loss: a dropped detection
                # or checkpoint_state frame is otherwise invisible (and
                # a shard whose checkpoints never land grows its WAL
                # without bound).
                delta = link.frames_dropped - dropped
                dropped = link.frames_dropped
                self.frames_dropped += delta
                if self.obs.enabled:
                    self.obs.counter(
                        "serve.failover.frames_dropped", shard=index
                    ).inc(delta)
            if frame is None:
                break
            worker.started.set()  # any frame proves the worker is up
            self._handle_frame(index, worker, frame)
        worker.dead = True
        worker.started.set()
        worker.applied.set()  # wake any drain barrier so it re-checks
        if worker.handoff is not None and not worker.handoff.done():
            worker.handoff.set_result(None)  # died mid-handoff

    def _handle_frame(
        self, index: int, worker: _Worker, frame: dict[str, Any]
    ) -> None:
        op = frame["op"]
        if op == "beat":
            worker.beats_seen += 1
            if self.faults.should_drop_beat(index, worker.beats_seen):
                if self.obs.enabled:
                    self.obs.counter("serve.failover.beats_dropped").inc()
                return
            sent_at = frame.get("t")
            self.monitor.beat(
                index,
                sent_at=float(sent_at) if sent_at is not None else None,
            )
        elif op == "ack":
            worker.acked_seq = max(worker.acked_seq, int(frame["seq"]))
            worker.applied.set()
            self.monitor.beat(index)  # an ack is proof of life too
        elif op == "detection":
            seq, k = int(frame["seq"]), int(frame["k"])
            if self.ledger.offer(index, seq, k):
                row = frame["row"]
                self._detections.setdefault(row["detection"], []).append(row)
                if self.obs.enabled:
                    self.obs.counter(
                        "serve.detections", shard=index
                    ).inc()
                if self.on_detection is not None:
                    self.on_detection(row)
        elif op == "checkpoint_state":
            store = self._stores[index]
            store.save(
                frame["state"],
                corrupt=self.faults.take_corrupt_checkpoint(index),
            )
            self._wals[index].truncate(store.retain_after)
            self.checkpoints += 1
            if self.obs.enabled:
                self.obs.counter("serve.failover.checkpoints").inc()
            if worker.handoff is not None and not worker.handoff.done():
                # scale() is waiting on this state for migration.
                worker.handoff.set_result(dict(frame["state"]))
        # "error" frames are tolerated: the worker survived the problem.

    # --- failure detection and recovery ----------------------------------

    async def _monitor_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.monitor.interval)
            if self._scaling:
                continue
            for index in range(self.router.shards):
                if self._stopping or self._scaling:
                    break
                if index in self._unavailable:
                    continue
                worker = self._workers.get(index)
                if worker is None:
                    continue
                if worker.dead:
                    await self._recover(index)
                elif self.monitor.suspect(index):
                    if self.obs.enabled:
                        self.obs.counter("serve.failover.beats_missed").inc(
                            self.monitor.missed(index)
                        )
                    worker.link.kill()
                    worker.dead = True
                    await self._recover(index)
            await self._maybe_rehome()

    def _lock(self, index: int) -> asyncio.Lock:
        lock = self._locks.get(index)
        if lock is None:
            lock = self._locks[index] = asyncio.Lock()
        return lock

    async def _recover(self, index: int, count_restart: bool = True) -> bool:
        """Respawn a shard: register, restore checkpoint, replay WAL tail.

        Bounded by ``retry_budget`` attempts with exponential backoff +
        jitter; returns False (and marks the shard unavailable) when the
        budget is exhausted.  Serialized per shard — against other
        recoveries *and* against :meth:`_deliver` — so the monitor loop
        cannot race a double respawn and a concurrent ingest cannot
        interleave event frames into the restore/replay stream.
        """
        async with self._lock(index):
            return await self._recover_locked(index, count_restart)

    async def _recover_locked(
        self, index: int, count_restart: bool = True
    ) -> bool:
        """The body of :meth:`_recover`; the per-shard lock is held."""
        existing = self._workers.get(index)
        if existing is not None and not existing.dead:
            return True  # someone else already recovered it
        started = time.perf_counter_ns()
        failure = "unknown"
        for attempt in range(self.retry_budget + 1):
            try:
                await self._reap(index)
                worker = await self._spawn(index)
                self._workers[index] = worker
                # Wait for the startup beat before arming the
                # liveness/dispatch clocks: interpreter startup must
                # never be mistaken for a dispatch stall.
                try:
                    await asyncio.wait_for(
                        worker.started.wait(), timeout=_STARTUP_TIMEOUT
                    )
                except asyncio.TimeoutError:
                    raise ReproError(
                        f"shard {index} worker emitted no frame within "
                        f"{_STARTUP_TIMEOUT}s of spawn"
                    ) from None
                if worker.dead:
                    raise ReproError(
                        f"shard {index} worker exited during startup"
                    )
                for name in self.router.rules_of(index):
                    text, context = self._rules[name]
                    await self._send(
                        worker,
                        {
                            "op": "register",
                            "name": name,
                            "expression": text,
                            "context": context.value,
                        },
                    )
                state = self._stores[index].load()
                after = 0
                if state is not None:
                    await self._send(
                        worker, {"op": "restore", "state": state}
                    )
                    after = int(state["seq"])
                tail = self._wals[index].tail(after)
                for entry in tail:
                    await self._send(worker, entry.frame())
                worker.sent_seq = tail[-1].seq if tail else after
                self._unavailable.pop(index, None)
                self.monitor.mark(index)
                if count_restart:
                    self.restarts += 1
                    self.replayed += len(tail)
                    if self.obs.enabled:
                        self.obs.counter("serve.failover.restarts").inc()
                        self.obs.histogram(
                            "serve.failover.replay_events"
                        ).observe(len(tail))
                        self.obs.histogram(
                            "serve.failover.restart_ns"
                        ).observe(time.perf_counter_ns() - started)
                return True
            except (ReproError, OSError, ConnectionError) as error:
                failure = str(error)
                await asyncio.sleep(self.backoff.delay(attempt))
        self._unavailable[index] = failure
        self.monitor.forget(index)
        if self.obs.enabled:
            self.obs.counter("serve.failover.unavailable").inc()
        # With a rebalance grace configured, a shard past its retry
        # budget is not parked indefinitely: its rules are re-homed onto
        # the survivors once the grace elapses (see _maybe_rehome; the
        # scale itself cannot run here — this shard's lock is held).
        if self.rebalance_grace is not None and self.router.shards > 1:
            self._rehome_pending.add(index)
            self._rehome_at = time.monotonic() + self.rebalance_grace
        return False

    async def _spawn(self, index: int) -> _Worker:
        if self.faults.take_spawn_failure(index):
            raise ReproError(f"injected spawn failure for shard {index}")
        link = await self.transport.connect(
            index,
            timer_ratio=self.timer_ratio,
            heartbeat_interval=self.monitor.interval,
            frame_limit=_WORKER_FRAME_LIMIT,
        )
        if hasattr(link, "on_resume"):
            # A severed-and-healed link resumes instead of respawning;
            # count it and reset the heartbeat baseline so a partition
            # that just healed is not instantly re-suspected.
            def resumed(shard: int = index) -> None:
                self.resumes += 1
                self.obs.counter("serve.failover.resumes").inc()
                self.monitor.mark(shard)

            link.on_resume = resumed
        worker = _Worker(link)
        worker.reader = asyncio.get_running_loop().create_task(
            self._read_loop(index, worker),
            name=f"repro-serve-cluster-reader-{index}",
        )
        return worker

    async def _reap(self, index: int) -> None:
        worker = self._workers.pop(index, None)
        if worker is None:
            return
        worker.link.kill()
        await worker.link.wait(timeout=5)
        if worker.reader is not None:
            worker.reader.cancel()
            try:
                await worker.reader
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    async def revive(self, index: int) -> bool:
        """Bring an unavailable shard back and replay its parked tail."""
        self._unavailable.pop(index, None)
        self._rehome_pending.discard(index)
        return await self._recover(index)

    # --- live re-balancing -----------------------------------------------

    def _register_all(self, replica: ShardReplica, names) -> None:
        for name in names:
            text, context = self._rules[name]
            replica.register(text, name, context)

    def _rebuild_replica(self, index: int) -> ShardReplica:
        """Rebuild a shard in-process from its durable checkpoint + WAL.

        The migration fallback for a worker that cannot hand its state
        off (dead, parked, or killed mid-handoff): everything since the
        last checkpoint exists in the WAL, and replaying the tail
        through the ledger re-derives exactly the detections the dead
        worker never delivered — the same exactly-once argument as a
        respawn, executed in the supervisor.
        """
        replica = ShardReplica(index, timer_ratio=self.timer_ratio)
        self._register_all(replica, self.router.rules_of(index))
        state = self._stores[index].load()
        if state is not None:
            replica.restore(state)
        tail = self._wals[index].tail(replica.applied_seq)
        for entry in tail:
            for tagged in replica.apply(entry):
                if self.ledger.offer(index, tagged.seq, tagged.k):
                    row = detection_to_json(index, tagged.detection)
                    self._detections.setdefault(
                        row["detection"], []
                    ).append(row)
                    if self.on_detection is not None:
                        self.on_detection(row)
        self.replayed += len(tail)
        return replica

    async def _collect_handoff(
        self, index: int, entry: WalEntry | None
    ) -> dict[str, Any] | None:
        """One worker's migration state, or None if it must be rebuilt.

        Sends the boundary advance (when one was logged), awaits its
        ack so the snapshot sits exactly at the granule boundary, then
        requests a checkpoint handoff and awaits the state frame.  Any
        failure — dead worker, parked shard, ack or handoff timeout —
        returns None and the caller falls back to
        :meth:`_rebuild_replica`.
        """
        if index in self._unavailable:
            return None
        worker = self._workers.get(index)
        if worker is None or worker.dead:
            return None
        timeout = max(
            5.0, self.monitor.interval * self.monitor.miss_threshold
        )
        try:
            if entry is not None and entry.seq > worker.sent_seq:
                await self._send(worker, entry.frame())
                worker.sent_seq = entry.seq
            target_seq = entry.seq if entry is not None else worker.sent_seq
            deadline = time.monotonic() + timeout
            while worker.acked_seq < target_seq and not worker.dead:
                worker.applied.clear()
                if worker.acked_seq >= target_seq or worker.dead:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                try:
                    await asyncio.wait_for(
                        worker.applied.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    return None
            if worker.dead:
                return None
            worker.handoff = asyncio.get_running_loop().create_future()
            await self._send(worker, {"op": "handoff"})
            if self.faults.take_scale_kill(index):
                # Chaos injection: the worker dies with the checkpoint
                # handoff in flight — the reply may or may not make it.
                worker.link.kill()
                worker.dead = True
            try:
                return await asyncio.wait_for(worker.handoff, timeout=timeout)
            except asyncio.TimeoutError:
                return None
        except (OSError, ConnectionError):
            worker.dead = True
            return None
        finally:
            worker.handoff = None

    async def scale(self, shards: int) -> ScaleReport:
        """Re-balance the live cluster onto ``shards`` workers.

        The migration runs at the current granule boundary: every shard
        first advances (logged) to the highest granule ingested, so by
        Def 4.4 the per-node state is *between* granules and movable.
        Live workers hand their state off via checkpoint frames; a
        worker that dies mid-handoff (or was already parked) is rebuilt
        in-process from its durable checkpoint + WAL with the ledger
        deduplicating replayed detections.  Rules are re-hashed by the
        successor router (epoch + 1), each new worker's detector is
        grafted from the old states, fresh WALs are seeded past the
        global seq high-water (so the ledger's per-shard marks keep
        deduplicating without a reset), and the new worker set is
        spawned.  Ingest is blocked for the duration; no event's
        fan-out ever straddles two shard maps.
        """
        if shards <= 0:
            raise ReproError(f"shard count must be positive, got {shards}")
        if self._stopping:
            raise ReproError("cannot scale a stopping cluster")
        while self._scaling:
            await self._scale_done.wait()
        self._scaling = True
        self._scale_done.clear()
        try:
            return await self._scale_now(shards)
        finally:
            self._scaling = False
            self._scale_done.set()

    async def _scale_now(self, shards: int) -> ScaleReport:
        old_router = self.router
        old_shards = old_router.shards
        boundary = self._last_granule
        sources: dict[int, Detector] = {}
        async with AsyncExitStack() as stack:
            # Hold every old shard's lock: recovery and dispatch are
            # fully quiesced while state is in motion.
            for index in range(old_shards):
                await stack.enter_async_context(self._lock(index))
            boundary_entries: dict[int, WalEntry] = {}
            if boundary is not None:
                for index in range(old_shards):
                    boundary_entries[index] = self._wals[
                        index
                    ].append_advance(boundary)
            handoff_fallbacks = 0
            for index in range(old_shards):
                state = await self._collect_handoff(
                    index, boundary_entries.get(index)
                )
                if state is not None:
                    replica = ShardReplica(
                        index, timer_ratio=self.timer_ratio
                    )
                    self._register_all(
                        replica, old_router.rules_of(index)
                    )
                    replica.restore(state)
                    sources[index] = replica.detector
                else:
                    handoff_fallbacks += 1
                    sources[index] = self._rebuild_replica(index).detector
            global_seq = max(
                (wal.last_seq for wal in self._wals.values()), default=0
            )
            successor = old_router.rehash(shards)
            snapshots: dict[int, dict[str, Any]] = {}
            for j in range(shards):
                target = ShardReplica(j, timer_ratio=self.timer_ratio)
                names = successor.rules_of(j)
                for name in names:
                    text, context = self._rules[name]
                    target.register(text, name, context)
                graft_detector(target.detector, sources)
                target.applied_seq = global_seq
                snapshots[j] = target.snapshot()
            # Swap the durable state wholesale: the snapshots above are
            # the new generation's checkpoints, and both WAL and store
            # files of the old layout are removed so a restarted
            # supervisor can never resurrect a stale shard map.
            for index in range(old_shards):
                await self._reap(index)
            for wal in self._wals.values():
                wal.close()
            for k in range(max(old_shards, shards)):
                for suffix in ("wal", "ckpt"):
                    path = os.path.join(self.state_dir, f"shard{k}.{suffix}")
                    if os.path.exists(path):
                        os.remove(path)
            self._wals = {
                k: ShardWAL(
                    os.path.join(self.state_dir, f"shard{k}.wal"),
                    codec=self._wal_codec,
                )
                for k in range(shards)
            }
            self._stores = {
                k: CheckpointStore(
                    os.path.join(self.state_dir, f"shard{k}.ckpt")
                )
                for k in range(shards)
            }
            for k in range(shards):
                self._wals[k].seed_seq(global_seq)
                self._stores[k].save(snapshots[k])
            for index in range(old_shards):
                self.monitor.forget(index)
            self._unavailable.clear()
            self._rehome_pending.clear()
            self.router = successor
            self._bind()
        # Locks released (new ingest is still blocked by the _scaling
        # flag); spawn the new worker set through the normal recovery
        # path — it restores the freshly saved snapshot and replays an
        # empty tail.
        for j in range(shards):
            await self._recover(j, count_restart=False)
        self.rebalances += 1
        if self.obs.enabled:
            self.obs.counter("serve.rebalance.scales").inc()
        if handoff_fallbacks:
            self.obs.counter(
                "serve.rebalance.handoff_fallbacks"
            ).inc(handoff_fallbacks)
        return ScaleReport(
            from_shards=old_shards,
            to_shards=shards,
            epoch=successor.epoch,
            boundary=boundary,
            seq=global_seq,
            moved_rules={
                name: (old_router.assignments[name], home)
                for name, home in successor.assignments.items()
                if old_router.assignments.get(name) != home
            },
            handoff_fallbacks=handoff_fallbacks,
        )

    async def _maybe_rehome(self) -> None:
        """Re-home the rules of shards past their retry budget.

        Runs outside every per-shard lock (exhaustion is noted inside
        :meth:`_recover_locked`, which holds one).  A no-op until the
        configured ``rebalance_grace`` has elapsed — the window in
        which an operator ``revive`` can still cancel the migration.
        """
        if (
            not self._rehome_pending
            or self._scaling
            or self._stopping
            or time.monotonic() < self._rehome_at
        ):
            return
        dead = sorted(self._rehome_pending)
        self._rehome_pending.clear()
        survivors = max(1, self.router.shards - len(dead))
        self.rehomes += 1
        if self.obs.enabled:
            self.obs.counter("serve.rebalance.rehomes").inc()
        await self.scale(survivors)

    def status(self) -> ClusterStatus:
        return ClusterStatus(
            shards=self.router.shards,
            epoch=self.router.epoch,
            transport=self.transport.name,
            unavailable=dict(self._unavailable),
            parked=self.parked,
            restarts=self.restarts,
            checkpoints=self.checkpoints,
            detections=self.ledger.accepted,
        )

    # --- drain / stop ----------------------------------------------------

    async def drain(self, horizon: int | None = None) -> list[ShardUnavailable]:
        """Barrier: every available shard has applied its whole WAL.

        With ``horizon`` each shard's engine clock first advances to
        that granule (logged as a WAL entry so failover replays it too).
        A shard that dies mid-drain is recovered and re-awaited; one
        past its retry budget is skipped and reported, never blocking
        the rest.
        """
        while self._scaling:
            await self._scale_done.wait()
        await self._maybe_rehome()
        signals: list[ShardUnavailable] = []
        for index in range(self.router.shards):
            if index in self._unavailable:
                signals.append(
                    ShardUnavailable(
                        index, self._unavailable[index], self.parked
                    )
                )
                continue
            if horizon is not None:
                entry = self._wals[index].append_advance(horizon)
                signal = await self._deliver(index, entry)
                if signal is not None:
                    signals.append(signal)
                    continue
            if not await self._await_applied(index, self._wals[index].last_seq):
                signals.append(
                    ShardUnavailable(
                        index, self._unavailable.get(index, "down"),
                        self.parked,
                    )
                )
        return signals

    async def _await_applied(self, index: int, seq: int) -> bool:
        """Wait until the shard's worker acked ``seq`` (dispatch timeout
        -> kill, recover, retry with backoff, bounded by the budget)."""
        timeout = self.monitor.interval * self.monitor.miss_threshold
        for attempt in range(self.retry_budget + 1):
            worker = self._workers.get(index)
            if worker is None or worker.dead:
                if not await self._recover(index):
                    return False
                continue
            while worker.acked_seq < seq and not worker.dead:
                worker.applied.clear()
                if worker.acked_seq >= seq or worker.dead:
                    break
                try:
                    await asyncio.wait_for(
                        worker.applied.wait(), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    break
            if worker.acked_seq >= seq:
                return True
            # Timed out or died: treat as a dispatch failure.
            if not worker.dead:
                worker.link.kill()
                worker.dead = True
            await asyncio.sleep(self.backoff.delay(attempt))
            if not await self._recover(index):
                return False
        self._unavailable.setdefault(index, "dispatch timeout")
        return False

    async def stop(self) -> None:
        """Graceful shutdown: final checkpoints, stop frames, reap all.

        The reader tasks are *awaited to EOF* (not cancelled) for
        gracefully stopped workers, so the final ``checkpoint_state``
        frame is always collected — which is what lets a restarted
        supervisor resume from the durable state with an empty replay
        tail instead of re-deriving (and re-deduplicating) detections.
        """
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for worker in self._workers.values():
            if worker.dead:
                continue
            try:
                await self._send(worker, {"op": "checkpoint"})
                await self._send(worker, {"op": "stop"})
                worker.link.close_input()
            except (OSError, ConnectionError):
                pass
        for worker in self._workers.values():
            if worker.reader is not None:
                try:
                    # The reader exits on channel EOF once the worker is
                    # gone, after consuming every buffered frame.
                    await asyncio.wait_for(worker.reader, timeout=10)
                except asyncio.TimeoutError:  # pragma: no cover - defensive
                    worker.reader.cancel()
            await worker.link.wait(timeout=10)
        self._workers.clear()
        for wal in self._wals.values():
            wal.close()

    # --- results ---------------------------------------------------------

    def detection_rows(self, name: str) -> list[dict[str, Any]]:
        """The collected JSON detection rows of one rule."""
        if name not in self._rules:
            raise ReproError(f"no rule named {name!r} is registered")
        return list(self._detections.get(name, ()))

    def timestamps_of(self, name: str) -> list[CompositeTimestamp]:
        """Composite timestamps of one rule's collected detections."""
        return [
            CompositeTimestamp.from_triples(
                [(site, int(g), int(l)) for site, g, l in row["timestamp"]]
            )
            for row in self.detection_rows(name)
        ]

    def unavailable_shards(self) -> dict[int, str]:
        """Deprecated: use :meth:`status` (``status().unavailable``)."""
        warnings.warn(
            "ClusterSupervisor.unavailable_shards() is deprecated; use "
            "status().unavailable",
            DeprecationWarning,
            stacklevel=2,
        )
        return dict(self._unavailable)


async def cluster_serve_stdin(
    supervisor: ClusterSupervisor,
    *,
    in_stream: IO[str] | IO[bytes] | None = None,
    out_stream: IO[str] | None = None,
    horizon_pad: int = 1,
    max_line_bytes: int = MAX_LINE_BYTES,
    codec: str | None = None,
) -> int:
    """Pump events from a stream through the cluster.

    The ``repro serve --procs N --stdin`` transport.  Input may be
    JSONL lines, version-1 binary event frames, or any interleaving —
    the splitter tells them apart by leading byte — subject to the
    ``codec`` mode (default: the supervisor's config): ``"jsonl"`` pins
    version 0 and rejects binary frames with a structured error;
    ``"binary"``/``"auto"`` accept both.  A client hello line is
    answered with a hello ack naming the chosen codec.  Detections and
    errors stream to ``out_stream`` as JSONL rows regardless of the
    ingest framing (pipeline composability: ``repro serve`` stdout is
    line-oriented).  Malformed, oversized, or corrupt input costs one
    structured error object each and the loop survives.  After EOF the
    cluster drains to ``last granule + horizon_pad`` and stops.
    """
    from repro.serve.protocol import (
        CodecError,
        StreamDecoder,
        choose_codec,
        get_codec,
        hello_ack_line,
        parse_hello,
    )

    mode = codec if codec is not None else supervisor.config.codec
    source = in_stream if in_stream is not None else sys.stdin
    target = out_stream if out_stream is not None else sys.stdout
    jsonl = get_codec("jsonl")
    binary = get_codec("binary")

    def write_line(line: str) -> None:
        target.write(line + "\n")
        target.flush()

    def write_error(message: str, **fields: Any) -> None:
        payload = {"error": message}
        payload.update(fields)
        write_line(json.dumps(payload, sort_keys=True))

    supervisor.on_detection = lambda row: write_line(
        json.dumps(row, sort_keys=True)
    )
    count = 0
    last_granule: int | None = None

    async def handle_event(event: ServeEvent) -> None:
        nonlocal count, last_granule
        for signal in await supervisor.ingest(event):
            write_error(
                "shard unavailable",
                shard=signal.shard,
                reason=signal.reason,
                parked=signal.parked,
            )
        count += 1
        granule = event.granule
        last_granule = (
            granule if last_granule is None else max(last_granule, granule)
        )

    async def handle_unit(unit: Any) -> None:
        if unit.kind == "error":
            write_error(unit.message)
            return
        if unit.kind == "frame":
            if mode == "jsonl":
                write_error(
                    "binary frame rejected: this server speaks jsonl only"
                )
                return
            try:
                events = binary.decode_batch(unit.payload)
            except CodecError as error:
                write_error(str(error))
                return
            for event in events:
                await handle_event(event)
            return
        # A JSONL line: a hello, an event, or garbage.
        try:
            data = json.loads(unit.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            write_error(f"invalid JSON event line: {error}")
            return
        if isinstance(data, dict):
            offered = parse_hello(data)
            if offered is not None:
                write_line(hello_ack_line(choose_codec(mode, offered)))
                return
            if data.get("op") == "scale":
                # In-stream admin: re-balance the live cluster between
                # granules.  The caller splices the line into the event
                # stream; scale() itself enforces the boundary.
                try:
                    report = await supervisor.scale(int(data["shards"]))
                except (ReproError, KeyError, TypeError, ValueError) as error:
                    write_error(f"scale failed: {error}")
                else:
                    write_line(
                        json.dumps(
                            {"scaled": report.to_dict()}, sort_keys=True
                        )
                    )
                return
        if not isinstance(data, dict):
            write_error(
                f"event line must be a JSON object, got {type(data).__name__}"
            )
            return
        try:
            await handle_event(ServeEvent.from_dict(data))
        except ReproError as error:
            write_error(str(error))

    splitter = StreamDecoder(
        max_line_bytes=max_line_bytes,
        max_frame_bytes=binary.frame_limit(max_line_bytes),
    )
    # sys.stdin (and any text wrapper over a buffer) yields its raw
    # byte stream for frame-capable reading; a plain text stream (tests
    # pass io.StringIO) stays line-oriented and is re-framed per line.
    raw = getattr(source, "buffer", None)
    byte_source = raw if raw is not None else source
    reads_bytes = not hasattr(byte_source, "encoding")

    await supervisor.start()
    try:
        if reads_bytes:
            while chunk := await asyncio.to_thread(byte_source.read, 1 << 16):
                for unit in splitter.feed(chunk):
                    await handle_unit(unit)
        else:
            while line := await asyncio.to_thread(source.readline):
                for unit in splitter.feed(line.encode("utf-8")):
                    await handle_unit(unit)
        for unit in splitter.finish():
            await handle_unit(unit)
        horizon = None if last_granule is None else last_granule + horizon_pad
        await supervisor.drain(horizon)
    finally:
        await supervisor.stop()
    return count
