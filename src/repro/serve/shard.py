"""One detection shard: a bounded queue, a worker, a detector.

A :class:`DetectionShard` owns a single-site
:class:`~repro.detection.detector.Detector` holding the rules the
router assigned to it, plus a bounded :class:`asyncio.Queue` of incoming
:class:`~repro.serve.protocol.ServeEvent`\\ s.  The worker coroutine
accumulates queued events into **granule-aligned batches** — all
consecutive events whose global time falls in the same ``g_g`` granule —
and feeds each batch through the detector in one step.

Why batching is safe: Definition 4.4 only orders events whose global
times differ by *more than one* granule, so two events inside one
granule are concurrent for every cross-site comparison, and same-site
events keep their local-tick order because the batch preserves arrival
order.  Batching therefore cannot reorder any *detectable* occurrence;
it only amortizes the per-event engine entry cost.

A batch is flushed when (a) an event from a later granule arrives, or
(b) the queue goes idle — so a quiet stream still sees its detections
promptly — or (c) the shard drains on shutdown.  Before the batch is
fed, the shard's engine clock advances to the batch granule, firing any
due temporal-operator timers exactly as the simulator's granule pump
does.  Events that arrive *late* (an older granule than the engine
clock) are fed immediately rather than dropped: the detector clamps
late timers instead of raising, matching the coordinator's behaviour
under message delay.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Mapping

from repro.contexts.policies import Context
from repro.detection.approximate import ApproximateStabilizer, VerdictDetection
from repro.detection.checkpoint import restore, snapshot
from repro.detection.detector import Detection, Detector
from repro.errors import ReproError
from repro.events.expressions import EventExpression
from repro.obs.instrument import Instrumentation, resolve
from repro.serve.protocol import ServeEvent, batch_occurrences

_STOP = object()


class DetectionShard:
    """One shard of the serving runtime.

    Parameters
    ----------
    index:
        The shard's position in the runtime (names its detector site).
    capacity:
        Bound of the ingest queue; a full queue suspends producers.
    high_water:
        Queue depth at which :meth:`under_pressure` reports ``True``
        (defaults to three quarters of ``capacity``).
    timer_ratio:
        Local ticks per global granule for temporal-operator timers.
    approximate:
        Anytime mode: intake runs through an
        :class:`~repro.detection.approximate.ApproximateStabilizer`
        (open-world: sites join its watermark set on first contact), so
        the shard emits TENTATIVE verdicts immediately and CONFIRMED /
        RETRACTED verdicts as the watermark frontier closes.  The
        shard's detector becomes the stabilizer's *exact* engine, so
        :meth:`detections_of` still reports the exact multiset.
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation` hub.
    """

    def __init__(
        self,
        index: int,
        *,
        capacity: int = 1024,
        high_water: int | None = None,
        timer_ratio: int = 1,
        approximate: bool = False,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if capacity <= 0:
            raise ReproError(f"queue capacity must be positive, got {capacity}")
        if high_water is None:
            high_water = max(1, (capacity * 3) // 4)
        if not 0 < high_water <= capacity:
            raise ReproError(
                f"high_water must be in (0, capacity], got {high_water}"
            )
        self.index = index
        self.capacity = capacity
        self.high_water = high_water
        self.obs = resolve(instrumentation)
        # The detector site is logical, not physical: every shard uses
        # the same name so timer stamps (``shard.timer``) stay mutually
        # comparable when a rule is re-homed onto a different shard by
        # an elastic re-balance.  Which physical shard detected an
        # occurrence is carried by ``index``, never by the timestamp.
        self.detector = Detector(
            site="shard",
            timer_ratio=timer_ratio,
            instrumentation=instrumentation,
        )
        self.approximate = approximate
        self.stabilizer: ApproximateStabilizer | None = (
            ApproximateStabilizer(
                self.detector,
                sites=[],
                auto_sites=True,
                instrumentation=instrumentation,
            )
            if approximate
            else None
        )
        self.verdicts: list[tuple[int, VerdictDetection]] = []
        #: Streaming hook: called with ``(shard index, verdict)`` for
        #: every verdict emission (the approximate-mode analogue of the
        #: per-rule detection callbacks).
        self.verdict_sink: Callable[[int, VerdictDetection], None] | None = None
        self.queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=capacity)
        self.events_processed = 0
        self.batches_flushed = 0
        self.detections: list[tuple[int, Detection]] = []
        self._batch: list[ServeEvent] = []
        self._batch_granule: int | None = None
        self._task: asyncio.Task | None = None

    # --- registration -----------------------------------------------------

    def register(
        self,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
        callback: Callable[[Detection], None] | None = None,
    ) -> None:
        """Register one rule on this shard's detector."""
        self.detector.register(
            expression, name=name, context=context, callback=callback
        )

    def subscribed_types(self) -> frozenset[str]:
        """The primitive event types this shard's rules consume."""
        return self.detector.graph.subscribed_event_types()

    def rule_names(self) -> list[str]:
        """The rules registered on this shard, sorted."""
        return sorted(self.detector.graph.roots)

    def detections_of(self, name: str) -> list:
        """Occurrences of one rule registered on this shard."""
        return self.detector.detections_of(name)

    # --- ingest side ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Events queued but not yet consumed by the worker."""
        return self.queue.qsize()

    def under_pressure(self) -> bool:
        """Whether the queue depth has passed the high-water mark."""
        return self.queue.qsize() >= self.high_water

    async def put(self, event: ServeEvent) -> None:
        """Enqueue one event; suspends while the queue is full."""
        await self.queue.put(event)

    async def put_batch(self, events: list[ServeEvent]) -> None:
        """Enqueue a whole batch as *one* queue item.

        The batch travels through the queue intact (one slot, one
        ``task_done``), so a granule decoded from one binary frame is
        accumulated by the worker in a single wake-up instead of N.
        """
        if events:
            await self.queue.put(events)

    # --- worker side ------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker task on the running event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._worker(), name=f"repro-serve-shard-{self.index}"
            )

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    async def _worker(self) -> None:
        queue = self.queue
        while True:
            item = await queue.get()
            if item is _STOP:
                self._flush()
                queue.task_done()
                return
            if type(item) is list:
                for event in item:
                    self._accumulate(event)
            else:
                self._accumulate(item)
            if queue.empty():
                self._flush()
            queue.task_done()

    def _accumulate(self, event: ServeEvent) -> None:
        granule = event.granule
        if self._batch_granule is None:
            self._batch_granule = granule
        elif granule > self._batch_granule:
            self._flush()
            self._batch_granule = granule
        # A *smaller* granule joins the current batch: the event is late
        # and must not stall behind the granule it missed.
        self._batch.append(event)

    def _flush(self) -> None:
        """Feed the open batch through the detector; records metrics."""
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        granule = self._batch_granule
        self._batch_granule = None
        started = time.perf_counter_ns()
        detector = self.detector
        stabilizer = self.stabilizer
        if stabilizer is not None:
            # Anytime path: the shadow engine's clock follows the raw
            # stream (tentative timer fires), the exact engine's clock
            # trails the watermark frontier (confirmations in
            # stabilized order).
            record_verdicts = self._record_verdicts
            if granule is not None:
                record_verdicts(stabilizer.advance_shadow(granule))
            for occurrence in batch_occurrences(batch):
                record_verdicts(stabilizer.offer(occurrence))
            record_verdicts(stabilizer.advance_exact())
        else:
            if granule is not None and granule > detector.now_global:
                self._record(detector.advance_time(granule))
            # One stamping pass for the whole batch (kernels.batch_stamps)
            # instead of N constructor calls — the ingest-side half of
            # the granule-batch amortization.
            feed = detector.feed
            record = self._record
            for occurrence in batch_occurrences(batch):
                record(feed(occurrence))
        self.events_processed += len(batch)
        self.batches_flushed += 1
        if self.obs.enabled:
            self.obs.histogram("serve.batch_size", shard=self.index).observe(
                len(batch)
            )
            self.obs.histogram("serve.flush_ns", shard=self.index).observe(
                time.perf_counter_ns() - started
            )
            self.obs.counter("serve.events", shard=self.index).inc(len(batch))

    def _record(self, detections: list[Detection]) -> None:
        for detection in detections:
            self.detections.append((self.index, detection))
        if detections and self.obs.enabled:
            self.obs.counter("serve.detections", shard=self.index).inc(
                len(detections)
            )

    def _record_verdicts(self, verdicts: list[VerdictDetection]) -> None:
        sink = self.verdict_sink
        for verdict in verdicts:
            self.verdicts.append((self.index, verdict))
            if sink is not None:
                sink(self.index, verdict)
        if verdicts and self.obs.enabled:
            self.obs.counter("serve.verdicts", shard=self.index).inc(
                len(verdicts)
            )

    def advance_time(self, granule: int) -> None:
        """Advance the engine clock (fires due timers); call only idle.

        The runtime invokes this from :meth:`~repro.serve.runtime.
        ServingRuntime.drain` after the queue has joined, so the worker
        is parked in ``queue.get`` and cannot race the detector.  In
        approximate mode this is also the drain-horizon promise — every
        known site's watermark is announced at ``granule``, so pending
        tentatives below it resolve.
        """
        self._flush()
        stabilizer = self.stabilizer
        if stabilizer is not None:
            self._record_verdicts(stabilizer.advance_shadow(granule))
            self._record_verdicts(stabilizer.announce_all(granule))
            self._record_verdicts(stabilizer.advance_exact())
            return
        if granule > self.detector.now_global:
            self._record(self.detector.advance_time(granule))

    async def drain(self) -> None:
        """Wait until every queued event has been processed and flushed."""
        await self.queue.join()
        # The worker flushes before task_done when the queue goes idle,
        # so after join() the open batch is empty — but a stopped worker
        # leaves the batch to us.
        if not self.running:
            self._flush()

    async def stop(self) -> None:
        """Flush, then terminate the worker (graceful shutdown)."""
        if self._task is None:
            self._flush()
        else:
            await self.queue.put(_STOP)
            await self._task
            self._task = None
        if self.stabilizer is not None:
            # End of stream: release everything still held, fire exact
            # timers up to where the shadow clock reached, and resolve
            # every remaining tentative one way or the other.
            self._record_verdicts(
                self.stabilizer.flush(
                    advance_to=self.stabilizer.shadow.now_global
                )
            )

    # --- crash recovery ---------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot detector state *and* undigested events.

        The pending batch and the queued events ride along so a restore
        resumes with zero loss — the serving analogue of the simulator's
        in-flight message snapshot.
        """
        if self.approximate:
            raise ReproError(
                "approximate shards do not checkpoint: the stabilizer's "
                "held occurrences and pending tentatives are not part "
                "of the snapshot format"
            )
        pending = [event.to_dict() for event in self._batch]
        # Queue internals are stable under asyncio's single thread; the
        # snapshot must be taken while the worker is idle (post-drain or
        # pre-start), which the runtime enforces.
        for item in list(self.queue._queue):  # noqa: SLF001
            if item is _STOP:
                continue
            if type(item) is list:
                pending.extend(event.to_dict() for event in item)
            else:
                pending.append(item.to_dict())
        return {
            "index": self.index,
            "detector": snapshot(self.detector),
            "pending": pending,
            "events_processed": self.events_processed,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Load a checkpoint into this identically-registered shard."""
        if self.approximate:
            raise ReproError(
                "approximate shards do not restore checkpoints; replay "
                "the stream instead (verdict emission is deterministic)"
            )
        if int(state["index"]) != self.index:
            raise ReproError(
                f"checkpoint belongs to shard {state['index']}, "
                f"this is shard {self.index}"
            )
        restore(self.detector, dict(state["detector"]))
        for row in state["pending"]:
            self.queue.put_nowait(ServeEvent.from_dict(row))
        self.events_processed = int(state.get("events_processed", 0))
