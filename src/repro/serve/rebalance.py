"""Detector state migration for live shard re-balancing.

``scale(n)`` re-hashes rules onto a new shard set at a granule
boundary.  Def 4.4 makes every event inside one granule concurrent, so
once every shard has advanced to the boundary granule the per-node
buffers are *between* granules — exactly the state the checkpoint
format already captures — and can be re-homed wholesale.

The subtlety is identity, not state.  Checkpoint node keys are
``name::context`` strings, and node *names* depend on registration
history: a root node adopts the first registering rule's name, and a
rule whose expression is already compiled gets an alias node
(:meth:`~repro.detection.graph.EventGraph.register`).  Two shards that
own different subsets of the rules therefore key the same logical node
differently, so migrating by key string would silently drop or reject
state.  This module grafts by the stable identity instead: the
``(expression, context)`` pair under which
:class:`~repro.detection.graph.EventGraph` shares subexpression nodes.

Merging is safe because routing fans a primitive event type to *every*
shard whose rules consume it: if two old shards both host a shared
subexpression, both fed it the identical substream, so their copies
agree at the boundary (modulo the per-shard timer site name, which the
conformance harness already canonicalizes).  The graft takes the
lowest-indexed contributor per node, deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.detection.checkpoint import _dump_node, _load_node
from repro.detection.detector import Detector
from repro.detection.nodes import PeriodicNode, PlusNode


@dataclass(frozen=True, slots=True)
class ScaleReport:
    """What one re-balancing migration did (returned by ``scale``)."""

    from_shards: int
    to_shards: int
    epoch: int
    boundary: int | None
    seq: int
    moved_rules: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Shards whose live checkpoint handoff failed mid-migration (dead,
    #: parked, or timed out) and were rebuilt from durable WAL +
    #: checkpoint state instead — nonzero means the migration survived
    #: a fault, not that anything was lost.
    handoff_fallbacks: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "epoch": self.epoch,
            "boundary": self.boundary,
            "seq": self.seq,
            "moved_rules": {
                name: list(homes) for name, homes in self.moved_rules.items()
            },
            "handoff_fallbacks": self.handoff_fallbacks,
        }


def graft_detector(
    target: Detector, sources: Mapping[int, Detector]
) -> None:
    """Copy migratable state from old shard detectors into ``target``.

    ``target`` must already have its (new) rule set registered and
    ``sources`` must be at a common granule boundary (equal
    ``now_global`` for every shard that was reachable; stragglers are
    tolerated by taking the max).  For every node of the target graph,
    the lowest-indexed source compiled from the same ``(expression,
    context)`` pair contributes its buffered state; pending Plus timers
    migrate with their nodes; the engine clock becomes the boundary.
    """
    target_shared = dict(target.graph._shared)
    target_aliases = {node.name: node for node in target.graph._aliases}
    grafted: set[int] = set()
    grafted_aliases: set[str] = set()
    boundary = target.now_global
    for index in sorted(sources):
        source = sources[index]
        boundary = max(boundary, source.now_global)
        by_identity = source.graph._shared
        for identity, source_node in by_identity.items():
            target_node = target_shared.get(identity)
            if target_node is None or id(target_node) in grafted:
                continue
            state = _dump_node(source_node)
            if state is not None:
                _load_node(target_node, state)
            grafted.add(id(target_node))
            # Pending timers belong to their node: re-schedule each one
            # owned by this identity on the target's heap.  Deadlines at
            # or below the boundary have already fired on the source
            # (it advanced to the boundary first), so what is left is
            # strictly future work.
            if isinstance(target_node, PlusNode):
                for fire_global, _, node, payload in source._timer_heap:
                    if node is source_node:
                        target.schedule(target_node, fire_global, payload)
            # Periodic windows re-arm their own timers from the loaded
            # window state, mirroring checkpoint restore.
            elif isinstance(target_node, PeriodicNode):
                for window in target_node._windows:
                    if not window.closed:
                        target.schedule(
                            target_node, window.next_tick, window
                        )
        # Alias nodes (duplicate-expression registrations) are not in
        # the shared map; match them by rule name.  They are currently
        # stateless pass-throughs, but a future stateful alias would
        # migrate here rather than silently reset.
        for source_alias in source.graph._aliases:
            name = source_alias.name
            target_alias = target_aliases.get(name)
            if target_alias is None or name in grafted_aliases:
                continue
            state = _dump_node(source_alias)
            if state is not None:
                _load_node(target_alias, state)
            grafted_aliases.add(name)
        # Timers whose node the target does not compile (the rule moved
        # elsewhere) are simply not copied — the shard owning that rule
        # grafts them from the same source.
    if boundary > target.now_global:
        target.now_global = boundary
