"""Multi-tenant serving: namespaces, quotas, and a replayable envelope log.

One cluster, many tenants.  Three mechanisms make that safe:

**Namespaces.**  A tenant's rules and events live in a private
namespace: rule names are qualified (``tenant/rule``) and every
primitive event type in a tenant's expressions is rewritten to its
tenant-scoped form (``buy`` -> ``acme/buy``) by
:func:`namespace_expression`.  Shard detectors are shared, and
``Detector.feed`` delivers an occurrence to *every* rule on the shard
subscribing to its type — so placing tenants on disjoint shards is not
enough; disjoint *type* namespaces are what isolate co-located tenants.
The tenant id is also folded into the CRC-32 routing salt
(:func:`tenant_salt`), so each tenant's rules spread across the shards
independently of every other tenant's.

**Quotas.**  Admission is a per-tenant token bucket refilled by the
*global granule clock* (:class:`TokenBucket` — tokens per granule, so
throttling is deterministic and fake-clock testable).  A tenant past
its budget has its surplus *parked*, not dropped: the events wait in
arrival order and are delivered at the next granule boundary (or at
drain).  Because intra-granule order is immaterial under Definition 4.4
and parked events never cross their own granule boundary, the detection
multiset is invariant — a noisy tenant pays latency, never correctness,
and never starves a quiet tenant's dispatch path.  Admission totals
surface as ``serve.tenant.*`` metrics and in
:meth:`MultiTenantCluster.status`.

**The envelope log.**  Every arrival is appended to the tenant's own
WAL lane before admission control runs (:class:`EnvelopeStore`, one
binary-codec-framed :class:`~repro.serve.wal.ShardWAL` per tenant plus
a ``tenants.json`` manifest).  An :class:`EventEnvelope` is the
spec-kitty-shaped view of one entry — ``event_id`` (lane seq),
``tenant``, ``aggregate_id`` (the emitting site), the composite clock
``(site, global, local)``, and the payload.  Because the lane holds the
raw (un-namespaced) events in arrival order, ``replay(tenant, upto)``
can rebuild the tenant's detection multiset *at any granule boundary*
by feeding a fresh replica and advancing its clock to ``upto`` —
exactly the chronology-as-invariant property the composite-timestamp
semantics forces.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.contexts.policies import Context
from repro.errors import ReproError
from repro.events.expressions import EventExpression, Primitive
from repro.events.occurrences import EventOccurrence
from repro.events.parser import parse_expression
from repro.obs.instrument import Instrumentation, resolve
from repro.serve.admin import ClusterAdmin, ClusterStatus
from repro.serve.cluster import (
    FaultPlan,
    LocalFailoverCluster,
    ShardReplica,
)
from repro.serve.protocol import ServeEvent
from repro.serve.wal import KIND_ADVANCE, KIND_EVENT, ShardWAL, WalEntry

#: Separator between a tenant id and the name it qualifies.  Tenant ids
#: themselves must not contain it (rule names and event types may).
TENANT_SEP = "/"

_TENANT_PATTERN = re.compile(r"[A-Za-z0-9_.\-]+\Z")

#: The envelope store's manifest file: rules, contexts, codec, horizon,
#: and the live detection multisets — everything a standalone
#: ``repro replay --store`` needs to rebuild and verify a tenant.
MANIFEST_NAME = "tenants.json"


def validate_tenant(tenant: str) -> str:
    """``tenant`` if it is a legal tenant id, else :class:`ReproError`.

    Tenant ids name WAL lane files and prefix rule names and event
    types, so they are restricted to ``[A-Za-z0-9_.-]+`` — in
    particular no ``/`` (the namespace separator) and never empty.
    """
    if not isinstance(tenant, str) or not _TENANT_PATTERN.match(tenant):
        raise ReproError(
            f"invalid tenant id {tenant!r}: must match [A-Za-z0-9_.-]+"
        )
    return tenant


def tenant_salt(salt: int, tenant: str) -> int:
    """The cluster salt with ``tenant`` folded in (stable CRC-32).

    Each tenant's rules hash under their own effective salt, so one
    tenant's rule names spread across the shards independently of every
    other tenant's — and the spread survives process restarts, unlike
    anything derived from Python's randomized ``hash``.
    """
    return zlib.crc32(f"{salt}:{tenant}".encode("utf-8"))


def qualified_rule(tenant: str, name: str) -> str:
    """The cluster-wide rule name for ``name`` owned by ``tenant``."""
    validate_tenant(tenant)
    if not name:
        raise ReproError("rule name must be non-empty")
    return f"{tenant}{TENANT_SEP}{name}"


def split_rule(qualified: str) -> tuple[str, str]:
    """``(tenant, name)`` back out of a qualified rule name."""
    tenant, sep, name = qualified.partition(TENANT_SEP)
    if not sep or not name:
        raise ReproError(f"{qualified!r} is not a tenant-qualified name")
    return validate_tenant(tenant), name


def namespaced_type(tenant: str, event_type: str) -> str:
    """The tenant-scoped form of a primitive event type."""
    return f"{tenant}{TENANT_SEP}{event_type}"


def namespace_expression(
    expression: EventExpression | str, tenant: str
) -> EventExpression:
    """``expression`` with every primitive leaf moved into ``tenant``'s
    type namespace.

    Only the :class:`~repro.events.expressions.Primitive` names change;
    operators, periods, offsets, and parameter filters are preserved,
    and timestamps never mention type names — so the namespaced rule
    detects exactly what the original would over the tenant's own
    (equally namespaced) events.
    """
    from dataclasses import fields as dc_fields
    from dataclasses import replace as dc_replace

    validate_tenant(tenant)
    if isinstance(expression, str):
        expression = parse_expression(expression)
    if isinstance(expression, Primitive):
        return Primitive(namespaced_type(tenant, expression.name))
    changes: dict[str, EventExpression] = {}
    for spec in dc_fields(expression):
        value = getattr(expression, spec.name)
        if isinstance(value, EventExpression):
            changes[spec.name] = namespace_expression(value, tenant)
    return dc_replace(expression, **changes) if changes else expression


def namespace_event(tenant: str, event: ServeEvent) -> ServeEvent:
    """``event`` re-typed into ``tenant``'s namespace (stamp unchanged)."""
    return ServeEvent(
        event_type=namespaced_type(tenant, event.event_type),
        site=event.site,
        global_time=event.global_time,
        local=event.local,
        parameters=event.parameters,
    )


# --- quotas -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """A tenant's admission budget: ``rate`` tokens per global granule,
    bursting up to ``burst``."""

    rate: float = 64.0
    burst: float = 128.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ReproError(f"quota rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ReproError(f"quota burst must be >= 1, got {self.burst}")


class TokenBucket:
    """A token bucket refilled by an injectable monotonic clock.

    The cluster's clock is the highest global granule seen, which makes
    admission a pure function of the event stream — the property the
    Hypothesis budget tests and the fake-clock latency regression test
    rely on.  ``try_acquire`` never admits past ``burst + rate *
    elapsed`` within any window, by construction.
    """

    def __init__(self, quota: TenantQuota, *, clock) -> None:
        self.quota = quota
        self._clock = clock
        self._tokens = float(quota.burst)
        self._last = float(clock())
        self.admitted = 0
        self.throttled = 0

    def _refill(self) -> None:
        now = float(self._clock())
        if now > self._last:
            self._tokens = min(
                float(self.quota.burst),
                self._tokens + (now - self._last) * self.quota.rate,
            )
            self._last = now

    @property
    def tokens(self) -> float:
        """The currently available tokens (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if the budget allows; count the outcome."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.admitted += 1
            return True
        self.throttled += 1
        return False


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank) of ``values``; 0 if empty."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0 < q <= 100:
        raise ReproError(f"percentile must be in (0, 100], got {q}")
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math
    return float(ordered[int(rank) - 1])


# --- the envelope log ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class EventEnvelope:
    """One append-only record of a tenant's event arrival.

    The spec-kitty system-events shape: a monotone ``event_id`` (the
    lane's WAL seq), the owning ``tenant``, the ``aggregate_id`` (the
    emitting site — the entity whose chronology the lane preserves),
    the composite clock, and the payload.  The wrapped ``event`` is the
    *raw* (un-namespaced) serve event, so replaying a lane is
    indistinguishable from the tenant having run alone.
    """

    event_id: int
    tenant: str
    event: ServeEvent

    @property
    def aggregate_id(self) -> str:
        return self.event.site

    @property
    def clock(self) -> tuple[str, int, int]:
        """The composite clock ``(site, global granule, local tick)``."""
        return (self.event.site, self.event.global_time, self.event.local)

    @property
    def granule(self) -> int:
        return self.event.granule

    @property
    def payload(self) -> Mapping[str, Any]:
        return self.event.parameters

    def to_dict(self) -> dict[str, Any]:
        return {
            "event_id": self.event_id,
            "tenant": self.tenant,
            "aggregate_id": self.aggregate_id,
            "clock": list(self.clock),
            "type": self.event.event_type,
            "payload": dict(self.event.parameters),
        }


class EnvelopeStore:
    """Per-tenant append-only event lanes over :class:`ShardWAL`.

    ``state_dir=None`` keeps every lane in memory; with a directory,
    each tenant gets a ``tenant-<id>.wal`` file (binary-codec framed by
    default — the WAL's mixed-framing loader reopens JSONL history
    too) and :meth:`save_manifest` persists the rule/context/horizon
    metadata a standalone replay needs.  Lanes only ever hold raw
    events in arrival order: clock advances are reconstructed by the
    replayer, so the log *is* the tenant's chronology and nothing else.
    """

    def __init__(
        self, state_dir: str | None = None, *, codec: str | None = "binary"
    ) -> None:
        self.state_dir = state_dir
        self.codec = codec
        self._lanes: dict[str, ShardWAL] = {}
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            for filename in sorted(os.listdir(state_dir)):
                if filename.startswith("tenant-") and filename.endswith(".wal"):
                    self.lane(filename[len("tenant-") : -len(".wal")])

    def lane_path(self, tenant: str) -> str | None:
        """The lane file for ``tenant`` (None for in-memory stores)."""
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, f"tenant-{tenant}.wal")

    def lane(self, tenant: str) -> ShardWAL:
        """The (lazily created) WAL lane owned by ``tenant``."""
        validate_tenant(tenant)
        wal = self._lanes.get(tenant)
        if wal is None:
            wal = ShardWAL(self.lane_path(tenant), codec=self.codec)
            self._lanes[tenant] = wal
        return wal

    def append(self, tenant: str, event: ServeEvent) -> EventEnvelope:
        """Log one arrival; returns its envelope (with the new id)."""
        entry = self.lane(tenant).append_event(event)
        return EventEnvelope(entry.seq, tenant, entry.event)

    def tenants(self) -> list[str]:
        """Every tenant with a lane, sorted."""
        return sorted(self._lanes)

    def envelopes(
        self, tenant: str, *, upto: int | None = None
    ) -> list[EventEnvelope]:
        """``tenant``'s envelopes in arrival order, optionally only
        those strictly below the ``upto`` granule boundary."""
        return [
            EventEnvelope(entry.seq, tenant, entry.event)
            for entry in self.lane(tenant)
            if entry.kind == KIND_EVENT
            and (upto is None or entry.event.granule < upto)
        ]

    def events(
        self, tenant: str, *, upto: int | None = None
    ) -> list[ServeEvent]:
        """The raw events behind :meth:`envelopes`."""
        return [
            event
            for event in self.lane(tenant).events()
            if upto is None or event.granule < upto
        ]

    # --- the manifest ----------------------------------------------------

    def manifest_path(self) -> str | None:
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, MANIFEST_NAME)

    def save_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Atomically persist the replay manifest (no-op in memory)."""
        path = self.manifest_path()
        if path is None:
            return
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True, indent=1)
        os.replace(tmp, path)

    def load_manifest(self) -> dict[str, Any] | None:
        """The persisted manifest, or None when absent/in-memory."""
        path = self.manifest_path()
        if path is None or not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def close(self) -> None:
        for wal in self._lanes.values():
            wal.close()

    def __enter__(self) -> "EnvelopeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def replay_tenant(
    events: Iterable[ServeEvent],
    rules: Mapping[str, tuple[EventExpression | str, Context]],
    *,
    upto: int | None = None,
    timer_ratio: int = 1,
) -> dict[str, list[EventOccurrence]]:
    """Rebuild a tenant's detections from its raw event chronology.

    Feeds every event with granule below the ``upto`` boundary (all of
    them when ``upto`` is None) into a fresh single replica — the same
    :class:`~repro.serve.cluster.ShardReplica` the failover path
    replays WALs through, logical timer site ``shard`` — then advances
    its clock to ``upto`` so due temporal-operator timers fire.  The
    result is the detection multiset the live cluster held at that
    granule boundary.
    """
    replica = ShardReplica(0, timer_ratio=timer_ratio)
    for name, (expression, context) in rules.items():
        replica.register(expression, name, context)
    seq = 0
    for event in events:
        if upto is not None and event.granule >= upto:
            continue
        seq += 1
        replica.apply(WalEntry(seq, KIND_EVENT, event=event))
    if upto is not None:
        replica.apply(WalEntry(seq + 1, KIND_ADVANCE, granule=upto))
    return {
        name: replica.detector.detections_of(name) for name in rules
    }


# --- the multi-tenant cluster -------------------------------------------------


class MultiTenantCluster(ClusterAdmin):
    """Tenant namespaces + quotas + envelope log over the failover tier.

    Wraps one :class:`~repro.serve.cluster.LocalFailoverCluster`:
    registration qualifies the rule name, namespaces the expression's
    primitive types, and hashes under the tenant-folded salt; ingest
    appends the raw event to the tenant's envelope lane, then admits it
    through the tenant's token bucket (surplus parks until the granule
    boundary).  Everything the inner cluster already guarantees —
    WAL + checkpoint failover, exactly-once ledgers, elastic ``scale``
    — applies per tenant unchanged, and per-tenant admission totals
    ride along in :meth:`status`.
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        salt: int = 0,
        timer_ratio: int = 1,
        checkpoint_every: int = 8,
        fault_plan: FaultPlan | None = None,
        codec: str | None = None,
        state_dir: str | None = None,
        quota: TenantQuota | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.cluster = LocalFailoverCluster(
            shards,
            salt=salt,
            timer_ratio=timer_ratio,
            checkpoint_every=checkpoint_every,
            fault_plan=fault_plan,
            codec=codec,
            instrumentation=instrumentation,
        )
        self.salt = salt
        self.timer_ratio = timer_ratio
        self.quota = quota
        self.store = EnvelopeStore(state_dir, codec=codec or "binary")
        self.obs = resolve(instrumentation)
        self._rules: dict[str, dict[str, tuple[str, Context]]] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._parked: dict[str, deque[tuple[ServeEvent, int]]] = {}
        self._latencies: dict[str, list[int]] = {}
        self._deferred: dict[str, int] = {}
        self._granule: int | None = None
        self._step = 0

    # --- registration ----------------------------------------------------

    def register(
        self,
        tenant: str,
        expression: EventExpression | str,
        name: str,
        context: Context = Context.UNRESTRICTED,
    ) -> int:
        """Register one rule in ``tenant``'s namespace; returns its shard."""
        validate_tenant(tenant)
        parsed = (
            parse_expression(expression)
            if isinstance(expression, str)
            else expression
        )
        source = expression if isinstance(expression, str) else str(parsed)
        self._rules.setdefault(tenant, {})[name] = (source, context)
        return self.cluster.register(
            namespace_expression(parsed, tenant),
            qualified_rule(tenant, name),
            context,
            salt=tenant_salt(self.salt, tenant),
        )

    def tenants(self) -> list[str]:
        """Every tenant with rules or an envelope lane, sorted."""
        return sorted(set(self._rules) | set(self.store.tenants()))

    def rules_of(self, tenant: str) -> dict[str, str]:
        """``tenant``'s rule names -> expression sources, for display."""
        return {
            name: source
            for name, (source, _) in self._rules.get(tenant, {}).items()
        }

    # --- the ingest path -------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket | None:
        if self.quota is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.quota,
                clock=lambda: 0 if self._granule is None else self._granule,
            )
            self._buckets[tenant] = bucket
        return bucket

    def ingest(self, tenant: str, event: ServeEvent) -> bool:
        """Log and admit one tenant event.

        Returns True when the event was dispatched immediately, False
        when the tenant's quota parked it (it will be delivered at the
        next granule boundary, or at :meth:`drain` — parked means
        deferred, never dropped, so detection multisets are invariant).
        """
        validate_tenant(tenant)
        self._step += 1
        granule = event.granule
        if self._granule is not None and granule > self._granule:
            # Entering a new granule: everything parked in the previous
            # one is delivered first, so no event ever crosses its own
            # granule boundary out of order.
            self._flush_parked()
        self._granule = (
            granule if self._granule is None else max(self._granule, granule)
        )
        self.store.append(tenant, event)
        bucket = self._bucket(tenant)
        parked = self._parked.get(tenant)
        if bucket is not None and (parked or not bucket.try_acquire()):
            if parked is None:
                parked = deque()
                self._parked[tenant] = parked
            parked.append((event, self._step))
            if self.obs.enabled:
                self.obs.counter(
                    "serve.tenant.throttled", tenant=tenant
                ).inc()
            return False
        self._deliver(tenant, event, self._step)
        if self.obs.enabled:
            self.obs.counter("serve.tenant.admitted", tenant=tenant).inc()
        return True

    def _deliver(self, tenant: str, event: ServeEvent, ingest_step: int) -> None:
        self.cluster.ingest(namespace_event(tenant, event))
        self._latencies.setdefault(tenant, []).append(
            self._step - ingest_step
        )

    def _flush_parked(self) -> None:
        flushed = 0
        for tenant in sorted(self._parked):
            queue = self._parked[tenant]
            while queue:
                event, step = queue.popleft()
                self._deliver(tenant, event, step)
                self._deferred[tenant] = self._deferred.get(tenant, 0) + 1
                flushed += 1
        if flushed and self.obs.enabled:
            self.obs.counter("serve.tenant.unparked").inc(flushed)

    def advance(self, granule: int) -> None:
        """Advance every shard clock to ``granule`` (flushes parked)."""
        self._flush_parked()
        self._granule = (
            granule if self._granule is None else max(self._granule, granule)
        )
        self.cluster.advance(granule)

    def dispatch_latencies(self, tenant: str) -> list[int]:
        """Per-event dispatch delays for ``tenant``, in ingest steps.

        0 means the event went straight through admission; a parked
        event's delay counts the ingest steps until its granule
        boundary flushed it — the deterministic latency signal the
        noisy-neighbour regression test gates on.
        """
        return list(self._latencies.get(tenant, ()))

    # --- the ClusterAdmin surface ----------------------------------------

    def scale(self, shards: int):
        """Re-balance the inner cluster (tenant salts re-hash intact)."""
        self._flush_parked()
        return self.cluster.scale(shards)

    def lose(self, index: int):
        self._flush_parked()
        return self.cluster.lose(index)

    def crash(self, index: int) -> int:
        return self.cluster.crash(index)

    def revive(self, shard: int) -> bool:
        return self.cluster.revive(shard)

    def drain(self, horizon: int | None = None):
        """Flush parked events, drain the cluster, persist the manifest."""
        self._flush_parked()
        if horizon is not None:
            self._granule = max(self._granule or 0, horizon)
        result = self.cluster.drain(horizon)
        self.save_manifest()
        return result

    def status(self) -> ClusterStatus:
        base = self.cluster.status()
        tenants: dict[str, dict[str, Any]] = {}
        for tenant in self.tenants():
            bucket = self._buckets.get(tenant)
            tenants[tenant] = {
                "rules": len(self._rules.get(tenant, {})),
                "events": len(self.store.lane(tenant)),
                "admitted": bucket.admitted if bucket else 0,
                "throttled": bucket.throttled if bucket else 0,
                "deferred": self._deferred.get(tenant, 0),
                "parked": len(self._parked.get(tenant, ())),
            }
        return ClusterStatus(
            shards=base.shards,
            epoch=base.epoch,
            transport=base.transport,
            unavailable=base.unavailable,
            parked=base.parked
            + sum(len(queue) for queue in self._parked.values()),
            restarts=base.restarts,
            checkpoints=base.checkpoints,
            detections=base.detections,
            tenants=tenants,
        )

    # --- results and replay ----------------------------------------------

    def detections_of(self, tenant: str, name: str) -> list[EventOccurrence]:
        """Collected occurrences of one tenant rule (exactly-once)."""
        if name not in self._rules.get(tenant, {}):
            raise ReproError(
                f"tenant {tenant!r} has no rule named {name!r}"
            )
        return self.cluster.detections_of(qualified_rule(tenant, name))

    def replay(
        self, tenant: str, upto: int | None = None
    ) -> dict[str, list[EventOccurrence]]:
        """Rebuild ``tenant``'s detections from its envelope lane.

        ``upto`` is a granule boundary: events strictly below it are
        replayed and the clock advances to it.  ``None`` replays the
        whole lane and advances to the cluster's current granule — the
        multiset then equals the live run exactly, kills, re-balances,
        and quota parking included.
        """
        rules = self._rules.get(tenant)
        if not rules:
            raise ReproError(f"no rules registered for tenant {tenant!r}")
        events = self.store.events(tenant, upto=upto)
        boundary = self._granule if upto is None else upto
        return replay_tenant(
            events, rules, upto=boundary, timer_ratio=self.timer_ratio
        )

    def save_manifest(self) -> None:
        """Persist everything a standalone replay needs (with a state
        dir): rules, contexts, codec, the drain horizon, and the live
        per-rule detection multisets for byte-for-byte verification."""
        detections = {
            tenant: {
                name: _timestamp_multiset(self.detections_of(tenant, name))
                for name in rules
            }
            for tenant, rules in self._rules.items()
        }
        self.store.save_manifest(
            {
                "salt": self.salt,
                "timer_ratio": self.timer_ratio,
                "codec": self.store.codec,
                "horizon": self._granule,
                "tenants": {
                    tenant: {
                        "rules": {
                            name: {
                                "expression": source,
                                "context": context.name,
                            }
                            for name, (source, context) in rules.items()
                        }
                    }
                    for tenant, rules in self._rules.items()
                },
                "detections": detections,
            }
        )

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "MultiTenantCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _timestamp_multiset(occurrences: Iterable[EventOccurrence]) -> list[str]:
    """The canonical sorted timestamp-string multiset of detections."""
    return sorted(str(occurrence.timestamp) for occurrence in occurrences)


def replay_store(
    state_dir: str,
    tenant: str,
    *,
    upto: int | None = None,
) -> tuple[dict[str, list[EventOccurrence]], dict[str, Any]]:
    """Standalone point-in-time replay from a persisted envelope store.

    Reads the ``tenants.json`` manifest for the tenant's rules,
    contexts, codec, and drain horizon; replays the tenant's lane to
    the ``upto`` boundary (the recorded horizon when None).  Returns
    ``(detections, manifest)`` — the manifest carries the live
    multisets recorded at drain, so callers can verify the
    reconstruction byte-for-byte (``repro replay --store --check``).
    """
    store = EnvelopeStore(state_dir)
    manifest = store.load_manifest()
    if manifest is None:
        raise ReproError(
            f"no {MANIFEST_NAME} manifest under {state_dir!r}; was the "
            "cluster drained with a state_dir?"
        )
    validate_tenant(tenant)
    entry = manifest.get("tenants", {}).get(tenant)
    if entry is None:
        raise ReproError(
            f"tenant {tenant!r} not in manifest; known: "
            + ", ".join(sorted(manifest.get("tenants", {})))
        )
    rules = {
        name: (spec["expression"], Context[spec["context"]])
        for name, spec in entry["rules"].items()
    }
    boundary = manifest.get("horizon") if upto is None else upto
    detections = replay_tenant(
        store.events(tenant),
        rules,
        upto=boundary,
        timer_ratio=int(manifest.get("timer_ratio", 1)),
    )
    store.close()
    return detections, manifest


def serve_tenants(
    rules_by_tenant: Mapping[str, Mapping[str, EventExpression | str]],
    events: Iterable[tuple[str, ServeEvent]],
    *,
    shards: int = 2,
    salt: int = 0,
    timer_ratio: int = 1,
    quota: TenantQuota | None = None,
    context: Context = Context.UNRESTRICTED,
    horizon: int | None = None,
    checkpoint_every: int = 8,
    fault_plan: FaultPlan | None = None,
    codec: str | None = None,
    state_dir: str | None = None,
    instrumentation: Instrumentation | None = None,
) -> MultiTenantCluster:
    """Run one interleaved ``(tenant, event)`` stream to completion.

    The multi-tenant mirror of
    :func:`~repro.serve.cluster.replay_with_failover`: registers every
    tenant's rules, ingests the stream in order, drains to ``horizon``
    (persisting the manifest when ``state_dir`` is set), and returns
    the cluster for inspection.
    """
    cluster = MultiTenantCluster(
        shards,
        salt=salt,
        timer_ratio=timer_ratio,
        checkpoint_every=checkpoint_every,
        fault_plan=fault_plan,
        codec=codec,
        state_dir=state_dir,
        quota=quota,
        instrumentation=instrumentation,
    )
    for tenant, rules in rules_by_tenant.items():
        for name, expression in rules.items():
            cluster.register(tenant, expression, name, context)
    for tenant, event in events:
        cluster.ingest(tenant, event)
    cluster.drain(horizon)
    return cluster
