"""Heartbeat failure detection and retry backoff for the serving cluster.

The supervisor's liveness layer is deliberately simple partial-synchrony
machinery (cf. Bonakdarpour et al., *Approximate Distributed Monitoring
under Partial Synchrony*): each worker process emits a beat every
``interval`` seconds (and every ack counts as a beat — a worker busy
applying events is alive); the :class:`HeartbeatMonitor` suspects a
shard once ``miss_threshold`` consecutive intervals pass without one.
A *delayed* heartbeat past the threshold is indistinguishable from a
dropped one — both trigger the same respawn path, which is safe because
recovery is idempotent (checkpoint restore + WAL replay + detection
dedup at the supervisor's ledger).

Beats may carry a **transport-supplied send timestamp** (the worker's
own monotonic clock).  Over a pipe, receipt time tracks send time
closely; over TCP, delivery jitter can bunch beats so the gap between
*receipts* exceeds the interval even though the worker emitted on
schedule.  :meth:`HeartbeatMonitor.beat` therefore estimates each
shard's minimum transport offset (clock skew + floor latency) and
credits the observed *extra* delay back to the liveness window, capped
at one full suspicion window so a genuinely dead worker is still
suspected in bounded time.

:class:`Backoff` provides the bounded exponential retry schedule with
deterministic jitter the supervisor sleeps between recovery attempts —
seeded, so fault-injection tests and the conformance ``failover`` check
replay identically.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.errors import ReproError


class HeartbeatMonitor:
    """Tracks per-shard liveness from worker beats.

    Parameters
    ----------
    interval:
        Seconds between expected beats (the worker emits on the same
        interval).
    miss_threshold:
        Consecutive missed intervals after which :meth:`suspect` reports
        the shard as failed.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        interval: float = 0.25,
        miss_threshold: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ReproError(f"heartbeat interval must be positive, got {interval}")
        if miss_threshold < 1:
            raise ReproError(
                f"miss threshold must be at least 1, got {miss_threshold}"
            )
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.clock = clock
        self._last_beat: dict[int, float] = {}
        self._min_offset: dict[int, float] = {}
        self._allowance: dict[int, float] = {}
        self._suspected: set[int] = set()
        self.beats: dict[int, int] = {}

    def mark(self, shard: int) -> None:
        """Reset the shard's liveness window (call on spawn/restart).

        Also resets the transport-offset estimator: a respawned worker
        (or a fresh TCP connection) has a new clock and a new path, so
        the old baseline no longer applies.
        """
        self._last_beat[shard] = self.clock()
        self._min_offset.pop(shard, None)
        self._allowance.pop(shard, None)
        self._suspected.discard(shard)

    def beat(self, shard: int, sent_at: float | None = None) -> None:
        """Record one received beat (or any sign of life) from a shard.

        ``sent_at`` is the worker's own monotonic send timestamp, when
        the transport carries one.  The *offset* (receipt − send) mixes
        clock skew with transport latency; its running minimum is the
        best estimate of the skew-plus-floor-latency baseline, and the
        excess over that baseline is delivery jitter.  That jitter is
        credited back to the liveness window — capped at one suspicion
        window (``interval * miss_threshold``) so a dead worker whose
        last beat happened to be slow is still suspected in bounded
        time.  Pipe transports pass no timestamp and keep the exact
        receipt-time behavior.
        """
        now = self.clock()
        if shard in self._suspected:
            # First sign of life after a suspicion episode (revive or a
            # healed partition): the old offset baseline and jitter
            # allowance describe the dead link, not this one — start
            # the estimator over instead of crediting stale delay.
            self._min_offset.pop(shard, None)
            self._allowance.pop(shard, None)
            self._suspected.discard(shard)
        self._last_beat[shard] = now
        self.beats[shard] = self.beats.get(shard, 0) + 1
        if sent_at is None:
            self._allowance.pop(shard, None)
            return
        offset = now - sent_at
        baseline = self._min_offset.get(shard)
        if baseline is None or offset < baseline:
            self._min_offset[shard] = baseline = offset
        cap = self.interval * self.miss_threshold
        self._allowance[shard] = min(max(0.0, offset - baseline), cap)

    def missed(self, shard: int) -> int:
        """Whole beat intervals elapsed since the shard's last beat.

        Net of the shard's current jitter allowance: a beat that was
        demonstrably delayed in transit extends the window by its
        measured delay instead of counting against the worker.
        """
        last = self._last_beat.get(shard)
        if last is None:
            return 0
        allowance = self._allowance.get(shard, 0.0)
        elapsed = self.clock() - last - allowance
        if elapsed <= 0:
            return 0
        return int(elapsed / self.interval)

    def suspect(self, shard: int) -> bool:
        """Whether the shard has missed ``miss_threshold`` intervals.

        A positive answer is remembered: the next :meth:`beat` from
        that shard resets the offset estimator and miss window instead
        of carrying pre-suspicion state across the outage.
        """
        if self.missed(shard) >= self.miss_threshold:
            self._suspected.add(shard)
            return True
        return False

    def forget(self, shard: int) -> None:
        """Stop tracking a shard (it was marked unavailable)."""
        self._last_beat.pop(shard, None)
        self._min_offset.pop(shard, None)
        self._allowance.pop(shard, None)
        self._suspected.add(shard)


class Backoff:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(attempt)`` grows as ``base * 2**attempt`` capped at ``cap``,
    scaled by a jitter factor in ``[0.5, 1.0)`` drawn from a seeded RNG —
    retries never synchronize across shards, yet a given seed always
    produces the same schedule (replayable fault tests).
    """

    def __init__(
        self, base: float = 0.05, cap: float = 2.0, seed: int = 0
    ) -> None:
        if base <= 0 or cap < base:
            raise ReproError(
                f"backoff needs 0 < base <= cap, got base={base} cap={cap}"
            )
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """The sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * (2 ** max(0, attempt)))
        return raw * (0.5 + self._rng.random() / 2)
