"""Consolidated configuration of the serving surface.

:class:`ServeConfig` is to the serving stack what
:class:`~repro.sim.config.SimConfig` is to the simulator: one frozen
dataclass carrying every knob that used to sprawl across
:class:`~repro.serve.runtime.ServingRuntime`,
:class:`~repro.serve.cluster.ClusterSupervisor`, and the ``repro
serve`` CLI.  Constructing it validates every field eagerly, so a typo
fails at configuration time rather than mid-stream.

Both entry points accept ``config=ServeConfig(...)``; the old keyword
arguments still work but emit :class:`DeprecationWarning`, and mixing
the two styles raises ``TypeError`` (the same contract ``SimCluster``
established for ``SimConfig``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any

from repro.errors import ReproError
from repro.serve.session import RetryPolicy

#: Sentinel distinguishing "keyword not passed" from any real value in
#: the legacy-keyword migration shims.
UNSET: Any = object()


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Every serving knob in one place.

    Single-process fields (``ServingRuntime``): ``shards``, ``salt``,
    ``timer_ratio``, ``capacity``, ``high_water``.  Multi-process fields
    (``ClusterSupervisor``): ``procs``, ``state_dir``,
    ``heartbeat_interval``, ``miss_threshold``, ``retry_budget``,
    ``checkpoint_every``, ``seed``, ``rebalance_grace`` (``None`` parks
    a shard past its retry budget until ``revive``; a float re-homes its
    rules onto the surviving shards after that many seconds).  Transport
    fields: ``max_line_bytes``, ``codec``, ``transport`` (``"auto"``
    picks ``"tcp"`` when ``workers`` endpoints are given, else local
    ``"subprocess"`` workers), ``workers`` (remote ``host:port`` shard
    endpoints; mutually exclusive with ``procs``), ``retry_policy`` (the
    :class:`~repro.serve.session.RetryPolicy` a dropped TCP link
    reconnects under; ``None`` uses the default policy) and
    ``session_grace`` (seconds a worker holds a disconnected session's
    replica for resume before discarding it).  Multi-tenant fields
    (:mod:`repro.serve.tenancy`): ``tenants`` (the synthetic tenant
    count ``repro serve --tenants`` interleaves its selftest workload
    across), ``quota_rate``/``quota_burst`` (the per-tenant token
    bucket: tokens per global granule and bucket capacity).  Detection
    mode: ``approximate`` turns on anytime detection — every shard runs
    an :class:`~repro.detection.approximate.ApproximateStabilizer` and
    emits TENTATIVE/CONFIRMED/RETRACTED verdicts instead of bare
    detections (in-process transports only; see ``docs/approximate.md``).
    """

    shards: int = 1
    salt: int = 0
    timer_ratio: int = 1
    capacity: int = 1024
    high_water: int | None = None
    procs: int | None = None
    state_dir: str | None = None
    heartbeat_interval: float = 0.25
    miss_threshold: int = 4
    retry_budget: int = 3
    checkpoint_every: int = 64
    max_line_bytes: int = 1 << 20
    codec: str = "auto"
    seed: int = 0
    transport: str = "auto"
    workers: tuple[str, ...] | None = None
    retry_policy: "RetryPolicy | None" = None
    session_grace: float | None = None
    rebalance_grace: float | None = None
    tenants: int | None = None
    quota_rate: float | None = None
    quota_burst: float | None = None
    approximate: bool = False

    def __post_init__(self) -> None:
        # workers= (remote TCP endpoints) and procs= (local subprocess
        # workers) name two different deployment shapes of the same
        # supervisor; silently preferring one would hide a real
        # misconfiguration, so mixing raises like mixing config= with
        # legacy keywords does.
        if self.workers is not None and self.procs is not None:
            raise TypeError(
                "ServeConfig: pass either workers= (remote TCP shard "
                "endpoints) or procs= (local subprocess worker count), "
                "not both"
            )
        if self.workers is not None:
            object.__setattr__(self, "workers", tuple(self.workers))
            if not self.workers:
                raise ValueError("workers must name at least one endpoint")
            for endpoint in self.workers:
                host, _, port = str(endpoint).rpartition(":")
                if not host or not port.isdigit():
                    raise ValueError(
                        f"worker endpoint {endpoint!r} is not HOST:PORT"
                    )
        if self.transport not in ("auto", "subprocess", "tcp"):
            raise ValueError(
                "transport must be auto, subprocess, or tcp, "
                f"got {self.transport!r}"
            )
        if self.transport == "tcp" and self.workers is None:
            raise ValueError(
                "transport='tcp' needs workers=('host:port', ...) endpoints"
            )
        if self.transport == "subprocess" and self.workers is not None:
            raise ValueError(
                "workers= endpoints are meaningless with "
                "transport='subprocess'"
            )
        if self.retry_policy is not None and not isinstance(
            self.retry_policy, RetryPolicy
        ):
            raise ValueError(
                "retry_policy must be a repro.serve.session.RetryPolicy, "
                f"got {self.retry_policy!r}"
            )
        if self.session_grace is not None and self.session_grace < 0:
            raise ValueError(
                "session_grace must be non-negative (or None for the "
                f"default), got {self.session_grace}"
            )
        if self.rebalance_grace is not None and self.rebalance_grace < 0:
            raise ValueError(
                "rebalance_grace must be non-negative (or None to park "
                f"failed shards), got {self.rebalance_grace}"
            )
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.timer_ratio <= 0:
            raise ValueError(
                f"timer_ratio must be positive, got {self.timer_ratio}"
            )
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.high_water is not None and not (
            0 < self.high_water <= self.capacity
        ):
            raise ValueError(
                f"high_water must be in (0, capacity], got {self.high_water}"
            )
        if self.procs is not None and self.procs <= 0:
            raise ValueError(f"procs must be positive, got {self.procs}")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                "heartbeat_interval must be positive, got "
                f"{self.heartbeat_interval}"
            )
        if self.miss_threshold <= 0:
            raise ValueError(
                f"miss_threshold must be positive, got {self.miss_threshold}"
            )
        if self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be non-negative, got {self.retry_budget}"
            )
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )
        if self.max_line_bytes <= 0:
            raise ValueError(
                f"max_line_bytes must be positive, got {self.max_line_bytes}"
            )
        if self.codec not in ("jsonl", "binary", "auto"):
            raise ValueError(
                f"codec must be jsonl, binary, or auto, got {self.codec!r}"
            )
        if self.tenants is not None and self.tenants <= 0:
            raise ValueError(
                f"tenants must be positive, got {self.tenants}"
            )
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be positive, got {self.quota_rate}"
            )
        if self.quota_burst is not None and self.quota_burst < 1:
            raise ValueError(
                f"quota_burst must be >= 1, got {self.quota_burst}"
            )
        if self.approximate and (
            self.procs is not None
            or self.workers is not None
            or self.tenants is not None
        ):
            # Verdict streams have no control-frame encoding yet, so the
            # multi-process / remote / multi-tenant deployments cannot
            # relay them; failing here beats silently serving exact.
            raise ValueError(
                "approximate mode serves in-process only (not with "
                "procs=, workers=, or tenants=)"
            )

    @property
    def resolved_transport(self) -> str:
        """The concrete transport ``"auto"`` resolves to."""
        if self.transport == "auto":
            return "tcp" if self.workers is not None else "subprocess"
        return self.transport

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The configurable field names, in declaration order."""
        return tuple(f.name for f in fields(cls))

    def replace(self, **changes: Any) -> "ServeConfig":
        """A copy with ``changes`` applied (re-validated)."""
        from dataclasses import replace

        return replace(self, **changes)


def resolve_config(
    owner: str,
    config: ServeConfig | None,
    legacy: dict[str, Any],
    *,
    warn: bool = True,
) -> ServeConfig:
    """The SimConfig migration contract, shared by the serving surface.

    ``legacy`` maps legacy keyword names to provided values (callers
    filter out :data:`UNSET`).  Mixing ``config=`` with legacy keywords
    raises ``TypeError``; legacy keywords alone warn (unless ``warn`` is
    off, for convenience wrappers whose keywords are not deprecated) and
    are folded into a fresh :class:`ServeConfig`.  Invalid legacy values
    surface as :class:`~repro.errors.ReproError`, matching what the
    pre-config constructors raised; an invalid ``ServeConfig(...)``
    built directly raises ``ValueError`` at construction, like
    ``SimConfig``.
    """
    if config is not None:
        if legacy:
            raise TypeError(
                f"{owner}: pass configuration either through "
                "config=ServeConfig(...) or through the legacy keywords, "
                "not both: " + ", ".join(sorted(legacy))
            )
        return config
    if legacy and warn:
        warnings.warn(
            f"{owner}: the {', '.join(sorted(legacy))} keyword(s) are "
            "deprecated; pass config=ServeConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    try:
        return ServeConfig(**legacy)
    except ValueError as error:
        raise ReproError(str(error)) from None
