"""Deterministic network-fault injection for the serving cluster.

:mod:`repro.serve.cluster`'s :class:`~repro.serve.cluster.FaultPlan`
schedules *process* faults — kills, dropped beats, corrupt checkpoints.
This module supplies the missing axis: faults in the **network** between
a supervisor and its workers, scheduled just as deterministically:

* :class:`NetFaultPlan` — a seeded, JSON-serializable schedule of
  link-level faults: one-way frame drops (each direction
  independently), frame duplication, connection resets (a partition
  that later heals), and latency stalls.  ``from_seed`` derives a
  reproducible plan from one integer, which is how the conformance
  ``netfault`` check and the fuzzer parameterize cases.

* :func:`replay_with_netfault` — the sans-IO harness: per shard, a
  supervisor-side :class:`~repro.serve.session.SessionHalf` faces a
  worker-side half plus a live :class:`~repro.serve.cluster.
  _ShardSession` replica across a scripted faulty channel.  Every frame
  is round-tripped through the negotiated codec per hop, resets run the
  real resume handshake, and dropped frames are recovered by the
  session layer's gap/rewind machinery — so the check proves the
  *protocol* (not the scheduler) delivers exactly-once detection under
  partitions, for both codecs, with no sockets and no clocks.

* :class:`FaultyLink` + :func:`install_fault_filter` — the in-path
  injector for a *live* TCP cluster: wraps each
  :class:`~repro.serve.transport.TcpLink` below the session layer (via
  ``TcpTransport.link_filter``), applying the same plan to real
  connections.  Fault state is shared per shard across reconnects, so
  a reset consumes its schedule slot exactly once.

* :class:`TcpFaultProxy` — a real socket-level proxy with ``sever()`` /
  ``heal()`` for end-to-end partition drills (the CI chaos leg and the
  severed-link integration tests): the supervisor dials the proxy, the
  proxy dials the worker, and severing it drops every byte in flight.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.contexts.policies import Context
from repro.errors import ReproError
from repro.events.expressions import EventExpression
from repro.events.parser import parse_expression
from repro.serve.protocol import (
    ServeEvent,
    detection_to_json,  # noqa: F401 - re-exported for harness consumers
    frame_to_line,
    get_codec,
    parse_frame,
)
from repro.serve.router import EventRouter
from repro.serve.session import SessionHalf
from repro.serve.transport import WorkerLink


@dataclass(frozen=True, slots=True)
class NetFaultPlan:
    """A deterministic, JSON-serializable schedule of link faults.

    Frame ordinals are 1-based counts of frames *attempted* on a
    direction of one shard's link since the run began (reconnects do
    not reset them — the schedule describes the link's whole history).

    ``drop_to_worker`` / ``drop_to_supervisor``
        Ordinals of frames silently dropped in that direction (a
        one-way partition of length one; contiguous runs model longer
        partitions).
    ``dup_to_worker`` / ``dup_to_supervisor``
        Ordinals of frames delivered twice (retransmission storms,
        misbehaving middleboxes).
    ``resets``
        Ordinals — counted over *both* directions combined — after
        which the connection drops entirely and must be re-established
        (the sever-and-heal partition).
    ``stalls``
        Ordinals (per direction, both directions) of frames delayed by
        ``stall_seconds`` before delivery — latency spikes.  Only the
        live :class:`FaultyLink` sleeps; the sans-IO harness treats a
        stall as reordering pressure and otherwise delivers.
    ``shard``
        Restrict the plan to one shard index (``None`` faults every
        link).
    """

    seed: int = 0
    drop_to_worker: tuple[int, ...] = ()
    drop_to_supervisor: tuple[int, ...] = ()
    dup_to_worker: tuple[int, ...] = ()
    dup_to_supervisor: tuple[int, ...] = ()
    resets: tuple[int, ...] = ()
    stalls: tuple[int, ...] = ()
    stall_seconds: float = 0.05
    shard: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "drop_to_worker", "drop_to_supervisor", "dup_to_worker",
            "dup_to_supervisor", "resets", "stalls",
        ):
            for ordinal in getattr(self, name):
                if ordinal < 1:
                    raise ReproError(
                        f"net-fault {name} ordinals are 1-based, "
                        f"got {ordinal}"
                    )
        if self.stall_seconds < 0:
            raise ReproError(
                f"stall_seconds must be non-negative, got {self.stall_seconds}"
            )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        frames: int = 60,
        drops: int = 2,
        dups: int = 2,
        resets: int = 1,
        stalls: int = 1,
        shard: int | None = None,
    ) -> "NetFaultPlan":
        """A reproducible random plan: same seed, same faults."""
        rng = random.Random(seed)

        def pick(count: int, span: int) -> tuple[int, ...]:
            count = min(count, span)
            return tuple(sorted(rng.sample(range(1, span + 1), count)))

        return cls(
            seed=seed,
            drop_to_worker=pick(drops, frames),
            drop_to_supervisor=pick(drops, frames),
            dup_to_worker=pick(dups, frames),
            dup_to_supervisor=pick(dups, frames),
            resets=pick(resets, frames * 2),
            stalls=pick(stalls, frames),
            shard=shard,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "drop_to_worker": list(self.drop_to_worker),
            "drop_to_supervisor": list(self.drop_to_supervisor),
            "dup_to_worker": list(self.dup_to_worker),
            "dup_to_supervisor": list(self.dup_to_supervisor),
            "resets": list(self.resets),
            "stalls": list(self.stalls),
            "stall_seconds": self.stall_seconds,
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetFaultPlan":
        try:
            return cls(
                seed=int(data.get("seed", 0)),
                drop_to_worker=tuple(
                    int(n) for n in data.get("drop_to_worker", ())
                ),
                drop_to_supervisor=tuple(
                    int(n) for n in data.get("drop_to_supervisor", ())
                ),
                dup_to_worker=tuple(
                    int(n) for n in data.get("dup_to_worker", ())
                ),
                dup_to_supervisor=tuple(
                    int(n) for n in data.get("dup_to_supervisor", ())
                ),
                resets=tuple(int(n) for n in data.get("resets", ())),
                stalls=tuple(int(n) for n in data.get("stalls", ())),
                stall_seconds=float(data.get("stall_seconds", 0.05)),
                shard=(
                    int(data["shard"])
                    if data.get("shard") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as error:
            raise ReproError(f"malformed net-fault plan: {error}") from None

    @classmethod
    def from_json(cls, text: str) -> "NetFaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"net-fault plan is not valid JSON: {error}"
            ) from None
        if not isinstance(data, dict):
            raise ReproError("net-fault plan must be a JSON object")
        return cls.from_dict(data)


class _FaultState:
    """Mutable per-shard fault bookkeeping, shared across reconnects."""

    __slots__ = ("plan", "to_worker", "to_supervisor", "total")

    def __init__(self, plan: NetFaultPlan) -> None:
        self.plan = plan
        self.to_worker = 0
        self.to_supervisor = 0
        self.total = 0


class FaultyLink(WorkerLink):
    """In-path injector wrapping one live connection, below the session
    layer — drops, duplicates, stalls, and resets per the shared plan.

    A reset kills the underlying connection and surfaces the same
    errors a real RST would (``ConnectionResetError`` from ``send``,
    end-of-stream from ``read``), so the resumable link above runs its
    genuine reconnect path.
    """

    def __init__(self, inner: WorkerLink, state: _FaultState) -> None:
        self.inner = inner
        self.state = state
        self._pending: list[dict[str, Any]] = []

    @property
    def frames_dropped(self) -> int:  # type: ignore[override]
        return self.inner.frames_dropped

    @property
    def codec_name(self) -> str:
        return getattr(self.inner, "codec_name", "jsonl")

    def _reset_due(self) -> bool:
        self.state.total += 1
        return self.state.total in self.state.plan.resets

    async def send(self, frame: dict[str, Any]) -> None:
        plan = self.state.plan
        self.state.to_worker += 1
        ordinal = self.state.to_worker
        if self._reset_due():
            self.inner.kill()
            raise ConnectionResetError("injected connection reset")
        if ordinal in plan.stalls and plan.stall_seconds:
            await asyncio.sleep(plan.stall_seconds)
        if ordinal in plan.drop_to_worker:
            return
        await self.inner.send(frame)
        if ordinal in plan.dup_to_worker:
            await self.inner.send(frame)

    async def read(self) -> dict[str, Any] | None:
        plan = self.state.plan
        if self._pending:
            return self._pending.pop(0)
        while True:
            frame = await self.inner.read()
            if frame is None:
                return None
            self.state.to_supervisor += 1
            ordinal = self.state.to_supervisor
            if self._reset_due():
                self.inner.kill()
                return None
            if ordinal in plan.stalls and plan.stall_seconds:
                await asyncio.sleep(plan.stall_seconds)
            if ordinal in plan.drop_to_supervisor:
                continue
            if ordinal in plan.dup_to_supervisor:
                self._pending.append(dict(frame))
            return frame

    def kill(self) -> None:
        self.inner.kill()

    def close_input(self) -> None:
        self.inner.close_input()

    async def wait(self, timeout: float = 10.0) -> None:
        await self.inner.wait(timeout=timeout)


def install_fault_filter(transport: Any, plan: NetFaultPlan) -> None:
    """Arm ``transport`` (a TcpTransport) with in-path fault injection.

    Per-shard fault state persists across reconnects, so each scheduled
    fault fires exactly once over the link's whole history.
    """
    if not hasattr(transport, "link_filter"):
        raise ReproError(
            "net-fault injection needs the tcp transport "
            f"(got {type(transport).__name__})"
        )
    states: dict[int, _FaultState] = {}

    def wrap(link: WorkerLink, shard: int) -> WorkerLink:
        if plan.shard is not None and shard != plan.shard:
            return link
        state = states.get(shard)
        if state is None:
            state = states[shard] = _FaultState(plan)
        return FaultyLink(link, state)

    transport.link_filter = wrap


class TcpFaultProxy:
    """A severable TCP relay between a supervisor and one worker listener.

    The end-to-end partition drill: the supervisor dials the proxy's
    bound port instead of the worker's, and every accepted connection is
    piped byte-for-byte to the target.  :meth:`sever` aborts all live
    pipes and refuses new connections (a full partition — connects see
    resets, in-flight frames die); :meth:`heal` reopens the path, after
    which the resumable session layer reconnects and replays.  Used by
    the severed-link integration tests and the CI chaos partition leg
    (``repro netfault-proxy``).
    """

    def __init__(
        self,
        target: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        target_host, _, target_port = target.rpartition(":")
        if not target_host or not target_port.isdigit():
            raise ReproError(f"proxy target {target!r} is not HOST:PORT")
        self.target_host = target_host
        self.target_port = int(target_port)
        self.host = host
        self.port = port
        self.severed = False
        self.connections = 0
        self.severs = 0
        self._server: asyncio.Server | None = None
        self._writers: list[asyncio.StreamWriter] = []

    @property
    def bound(self) -> str:
        """The ``host:port`` the proxy listens on (after :meth:`start`)."""
        if self._server is None:
            raise ReproError("proxy is not started")
        name = self._server.sockets[0].getsockname()
        return f"{name[0]}:{name[1]}"

    async def start(self) -> "TcpFaultProxy":
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        return self

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.severed:
            writer.close()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            writer.close()
            return
        self.connections += 1
        self._writers.extend((writer, up_writer))

        async def pipe(
            src: asyncio.StreamReader, dst: asyncio.StreamWriter
        ) -> None:
            try:
                while True:
                    chunk = await src.read(1 << 16)
                    if not chunk or self.severed:
                        break
                    dst.write(chunk)
                    await dst.drain()
            except (OSError, ConnectionError):
                pass
            finally:
                try:
                    dst.close()
                except (OSError, ConnectionError):
                    pass

        await asyncio.gather(
            pipe(reader, up_writer), pipe(up_reader, writer)
        )
        for closed in (writer, up_writer):
            if closed in self._writers:
                self._writers.remove(closed)

    def _abort_pipes(self) -> None:
        for writer in self._writers:
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    def sever(self) -> None:
        """Partition: abort every live pipe, refuse new connections."""
        self.severed = True
        self.severs += 1
        self._abort_pipes()

    def heal(self) -> None:
        """End the partition: new connections relay again."""
        self.severed = False

    async def serve_forever(self) -> None:
        """Relay until cancelled (the ``repro netfault-proxy`` loop)."""
        if self._server is None:
            raise ReproError("proxy is not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        self._abort_pipes()
        self.severed = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# --- the sans-IO partition harness ------------------------------------------


class _Channel:
    """One shard's faulty duplex channel between two session halves.

    Synchronous and deterministic: frames are codec round-tripped per
    hop, faults fire by scripted ordinal, a reset runs the real resume
    handshake (each side replays its unacknowledged buffer — through
    the faulty channel again, so later faults can hit replayed frames).
    """

    def __init__(
        self,
        shard: int,
        worker: Any,
        plan: NetFaultPlan | None,
        codec: str,
    ) -> None:
        self.shard = shard
        self.worker = worker  # a cluster._ShardSession
        self.plan = plan
        self.codec = codec
        self.sup = SessionHalf()
        self.wrk = SessionHalf()
        self.to_worker = 0
        self.to_supervisor = 0
        self.total = 0
        self.resumes = 0
        self.drops = 0
        self.dups = 0
        self.inbox: list[dict[str, Any]] = []  # supervisor-delivered frames
        self._binary = get_codec("binary")
        # The wire is a FIFO, pumped one frame at a time: an endpoint
        # finishes processing a frame (including everything it emits)
        # before the next is delivered.  Recursing instead would let a
        # mid-apply fault re-enter the replica and interleave one
        # entry's detections with another's.
        self._queue: list[tuple[str, dict[str, Any]]] = []
        self._pumping = False

    def _roundtrip(self, frame: dict[str, Any]) -> dict[str, Any]:
        if self.codec == "binary":
            return self._binary.decode_control(
                self._binary.encode_control(frame)
            )
        data = dict(frame)
        op = data.pop("op")
        return parse_frame(frame_to_line(op, **data))

    # -- supervisor-side API ------------------------------------------

    def send(self, frame: dict[str, Any]) -> None:
        """Supervisor sends one logical frame toward the worker."""
        self._to_worker(self.sup.stamp(frame))
        self._pump()

    def flush(self) -> None:
        """Fault-free settlement: replay until both buffers drain.

        A real link settles trailing losses on its next traffic or its
        next reconnect; the harness ends the scripted faults and runs
        one clean resume so the last frame of a run cannot stay lost.
        """
        self.plan = None
        guard = 0
        while self.sup.outstanding or self.wrk.outstanding:
            self._resume(settle=True)
            self._pump()
            guard += 1
            if guard > 8:  # pragma: no cover - the handshake converges
                raise ReproError(
                    f"netfault flush did not converge for shard {self.shard}"
                )

    # -- the faulty wire ----------------------------------------------

    def _pump(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._queue:
                direction, wire = self._queue.pop(0)
                if direction == "to_worker":
                    self._transmit_worker(wire)
                else:
                    self._transmit_supervisor(wire)
        finally:
            self._pumping = False

    def _fault(self, direction: str, ordinal: int) -> str:
        plan = self.plan
        if plan is None:
            return "deliver"
        self.total += 1
        if self.total in plan.resets:
            return "reset"
        if ordinal in getattr(plan, f"drop_{direction}"):
            self.drops += 1
            return "drop"
        if ordinal in getattr(plan, f"dup_{direction}"):
            self.dups += 1
            return "dup"
        return "deliver"

    def _to_worker(self, wire: dict[str, Any]) -> None:
        self._queue.append(("to_worker", wire))

    def _to_supervisor(self, wire: dict[str, Any]) -> None:
        self._queue.append(("to_supervisor", wire))

    def _transmit_worker(self, wire: dict[str, Any]) -> None:
        self.to_worker += 1
        verdict = self._fault("to_worker", self.to_worker)
        if verdict == "reset":
            self._resume()
            return
        if verdict == "drop":
            return
        for _ in range(2 if verdict == "dup" else 1):
            self._deliver_worker(self._roundtrip(wire))

    def _transmit_supervisor(self, wire: dict[str, Any]) -> None:
        self.to_supervisor += 1
        verdict = self._fault("to_supervisor", self.to_supervisor)
        if verdict == "reset":
            self._resume()
            return
        if verdict == "drop":
            return
        for _ in range(2 if verdict == "dup" else 1):
            self._deliver_supervisor(self._roundtrip(wire))

    # -- endpoint delivery --------------------------------------------

    def _emit(self, op: str, **fields: Any) -> None:
        """The worker replica's emit callback: stamp and transmit."""
        self._to_supervisor(self.wrk.stamp({"op": op, **fields}))

    def _deliver_worker(self, frame: dict[str, Any]) -> None:
        verdict = self.wrk.receive(frame)
        if verdict == "duplicate":
            return
        if verdict == "gap":
            self._to_supervisor(self.wrk.rewind_frame())
            return
        if frame.get("op") == "rewind":
            for replay in self.wrk.replay_after(int(frame["have"])):
                self._to_supervisor(replay)
            return
        self.worker.handle(frame, self._emit)

    def _deliver_supervisor(self, frame: dict[str, Any]) -> None:
        verdict = self.sup.receive(frame)
        if verdict == "duplicate":
            return
        if verdict == "gap":
            self._to_worker(self.sup.rewind_frame())
            return
        if frame.get("op") == "rewind":
            for replay in self.sup.replay_after(int(frame["have"])):
                self._to_worker(replay)
            return
        self.inbox.append(frame)

    # -- the resume handshake -----------------------------------------

    def _resume(self, settle: bool = False) -> None:
        """Sever and immediately heal: the hello/hello_ack watermark
        exchange, then both sides replay their unacknowledged tails.

        ``settle`` marks the end-of-run flush (a trailing ack exchange,
        not a fault recovery) so fault-free runs report zero resumes.
        """
        if not settle:
            self.resumes += 1
        # hello carries the supervisor's recv_n; hello_ack the worker's.
        for wire in self.sup.replay_after(self.wrk.recv_n):
            self._to_worker(wire)
        for wire in self.wrk.replay_after(self.sup.recv_n):
            self._to_supervisor(wire)


@dataclass
class NetFaultReport:
    """What a harness run produced, plus the faults that actually fired."""

    rows: list[dict[str, Any]] = field(default_factory=list)
    resumes: int = 0
    drops: int = 0
    dups: int = 0
    duplicates_suppressed: int = 0

    def timestamps_of(self, name: str) -> list[tuple[Any, ...]]:
        """The (hashable) occurrence timestamps detected for one rule."""
        return [
            tuple(tuple(t) for t in row["timestamp"])
            for row in self.rows
            if row["detection"] == name
        ]

    def names(self) -> set[str]:
        return {row["detection"] for row in self.rows}


def replay_with_netfault(
    rules: Mapping[str, "EventExpression | str"],
    events: Iterable[ServeEvent],
    *,
    shards: int = 2,
    salt: int = 0,
    timer_ratio: int = 1,
    context: Context = Context.UNRESTRICTED,
    horizon: int | None = None,
    plan: NetFaultPlan | None = None,
    codec: str = "jsonl",
) -> NetFaultReport:
    """Serve ``events`` across faulty links; returns what was detected.

    The deterministic engine of the conformance ``netfault`` check:
    ``plan=None`` is the fault-free control run, and the check demands
    the faulted run's detection multiset equal it exactly.  Unlike the
    failover harness there are no crashes here — replicas live through
    every fault; only the *network* misbehaves — so any discrepancy is
    a session-protocol defect, not a recovery one.
    """
    from repro.serve.cluster import DetectionLedger, _ShardSession

    if codec not in ("jsonl", "binary"):
        raise ReproError(f"codec must be jsonl or binary, got {codec!r}")
    router = EventRouter(shards, salt=salt)
    channels: dict[int, _Channel] = {}
    for index in range(shards):
        channels[index] = _Channel(
            index,
            _ShardSession(index, timer_ratio=timer_ratio),
            plan if plan is None or plan.shard in (None, index) else None,
            codec,
        )
    by_shard: dict[int, set[str]] = {}
    for name in sorted(rules):
        expression = rules[name]
        index = router.assign(name)
        parsed = (
            parse_expression(expression)
            if isinstance(expression, str)
            else expression
        )
        by_shard.setdefault(index, set()).update(parsed.primitive_types())
        channels[index].send(
            {
                "op": "register",
                "expression": str(parsed),
                "name": name,
                "context": context.value,
            }
        )
    router.bind(by_shard)

    seqs = {index: 0 for index in range(shards)}
    last_granule: int | None = None
    for event in events:
        last_granule = (
            event.granule
            if last_granule is None
            else max(last_granule, event.granule)
        )
        for index in router.route(event.event_type):
            seqs[index] += 1
            channels[index].send(
                {
                    "op": "event",
                    "seq": seqs[index],
                    "event": event.to_dict(),
                }
            )
    drain_to = horizon if horizon is not None else (
        last_granule + 1 if last_granule is not None else 0
    )
    for index, channel in channels.items():
        seqs[index] += 1
        channel.send(
            {"op": "advance", "seq": seqs[index], "granule": drain_to}
        )
        channel.flush()

    ledger = DetectionLedger()
    report = NetFaultReport()
    for index, channel in channels.items():
        report.resumes += channel.resumes
        report.drops += channel.drops
        report.dups += channel.dups
        for frame in channel.inbox:
            if frame.get("op") != "detection":
                continue
            if ledger.offer(index, int(frame["seq"]), int(frame["k"])):
                report.rows.append(dict(frame["row"]))
    report.duplicates_suppressed = ledger.duplicates
    return report
