"""The unified cluster administration surface.

Cluster operability grew up ad hoc: the supervisor had ``revive`` and
``drain``, the in-process harness had ``advance`` and ``crash``, and
inspection meant poking attributes.  :class:`ClusterAdmin` names the
four operations an operator (or the CLI) actually performs —
``scale``, ``revive``, ``drain``, ``status`` — and both
:class:`~repro.serve.cluster.ClusterSupervisor` (async) and
:class:`~repro.serve.cluster.LocalFailoverCluster` (sync) implement
them, so tooling written against one drives the other.  Superseded
ad-hoc methods keep working as :class:`DeprecationWarning` aliases,
mirroring the SimConfig/ServeConfig migration contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class ClusterStatus:
    """One consistent snapshot of a cluster's shape and health."""

    shards: int
    epoch: int
    transport: str
    unavailable: dict[int, str] = field(default_factory=dict)
    parked: int = 0
    restarts: int = 0
    checkpoints: int = 0
    detections: int = 0
    #: Per-tenant admission totals (rules, events, admitted, throttled,
    #: deferred, parked) — populated by the multi-tenant tier, empty on
    #: single-tenant clusters.
    tenants: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """Every shard currently serving."""
        return not self.unavailable

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "epoch": self.epoch,
            "transport": self.transport,
            "unavailable": dict(self.unavailable),
            "parked": self.parked,
            "restarts": self.restarts,
            "checkpoints": self.checkpoints,
            "detections": self.detections,
            "tenants": {
                tenant: dict(info) for tenant, info in self.tenants.items()
            },
            "healthy": self.healthy,
        }


class ClusterAdmin(ABC):
    """The administrative contract every cluster implementation offers.

    ``scale`` and ``revive`` and ``drain`` are coroutines on the
    process-backed supervisor and plain methods on the in-process
    harness; ``status`` is synchronous everywhere.
    """

    @abstractmethod
    def scale(self, shards: int):
        """Re-hash rules onto ``shards`` shards at a granule boundary,
        migrating detector state; returns a
        :class:`~repro.serve.rebalance.ScaleReport`."""

    @abstractmethod
    def revive(self, shard: int):
        """Bring a degraded shard back and replay its parked WAL tail."""

    @abstractmethod
    def drain(self, horizon: int | None = None):
        """Barrier: every available shard has applied its whole WAL
        (optionally advancing engine clocks to ``horizon`` first)."""

    @abstractmethod
    def status(self) -> ClusterStatus:
        """The cluster's current shape and health."""
