"""Per-shard write-ahead log for the fault-tolerant serving cluster.

Every event the router dispatches to a shard — and every drain-time
clock advance — is appended to that shard's WAL *before* it is sent to
the worker process.  The WAL is therefore the authoritative record of
what the shard must have applied: on worker death the supervisor
restores the last durable checkpoint and replays the tail of entries
with sequence numbers past the checkpoint's ``seq``, which reproduces
the exact pre-crash detector state (the replay boundary is well-defined
because entries are applied one at a time in sequence order — see
Def 4.4 and ``docs/serving.md``).

Entries come in two kinds:

``event``
    One :class:`~repro.serve.protocol.ServeEvent` dispatched to the
    shard.

``advance``
    A drain-time engine-clock advance to a horizon granule (fires due
    temporal-operator timers).  Advances are logged so replay reproduces
    timer firings too — a timer detection is as much shard state as an
    event-driven one.

A :class:`ShardWAL` may be file-backed (one JSONL file per shard, the
mode the cluster supervisor uses — durable across *process* crashes;
appends are flushed, not fsynced, so an OS crash or power loss may lose
the newest entries) or purely in-memory (the mode the in-process
failover harness, the conformance ``failover`` check, and the benches
use — same replay semantics, no disk).  Truncation drops entries at or
below a sequence number once a *previous-generation* checkpoint covers
them; the supervisor deliberately retains one checkpoint generation of
slack so a corrupted latest checkpoint can still fall back to the
previous one plus the retained tail.  The newest entry is always kept
even when fully covered: it is the durable sequence watermark, so a
reopened log keeps numbering past the checkpoint instead of restarting
below it (which would make new entries invisible to recovery's tail
replay).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import CodecError, ReproError
from repro.serve.protocol import (
    Codec,
    ServeEvent,
    StreamDecoder,
    get_codec,
    resolve_codec,
)

KIND_EVENT = "event"
KIND_ADVANCE = "advance"


@dataclass(frozen=True, slots=True)
class WalEntry:
    """One durable unit of shard input: an event or a clock advance."""

    seq: int
    kind: str
    event: ServeEvent | None = None
    granule: int | None = None

    def to_dict(self) -> dict[str, Any]:
        if self.kind == KIND_EVENT:
            return {"seq": self.seq, "kind": self.kind,
                    "event": self.event.to_dict()}
        return {"seq": self.seq, "kind": self.kind, "granule": self.granule}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WalEntry":
        try:
            kind = str(data["kind"])
            seq = int(data["seq"])
            if kind == KIND_EVENT:
                return cls(seq=seq, kind=kind,
                           event=ServeEvent.from_dict(data["event"]))
            if kind == KIND_ADVANCE:
                return cls(seq=seq, kind=kind, granule=int(data["granule"]))
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(f"malformed WAL entry {data!r}: {error}") from None
        raise ReproError(f"unknown WAL entry kind {kind!r}")

    def frame(self) -> dict[str, Any]:
        """The wire frame dispatching this entry to a worker process."""
        if self.kind == KIND_EVENT:
            return {"op": "event", "seq": self.seq,
                    "event": self.event.to_dict()}
        return {"op": "advance", "seq": self.seq, "granule": self.granule}

    def encode(self, codec: Codec) -> bytes:
        """This entry in ``codec``'s WAL framing."""
        return codec.encode_wal_entry(
            self.seq, self.kind, event=self.event, granule=self.granule
        )

    @classmethod
    def decode(cls, codec: Codec, blob: bytes) -> "WalEntry":
        """One entry back out of ``codec``'s WAL framing."""
        data = codec.decode_wal_entry(blob)
        if data["kind"] == KIND_EVENT:
            return cls(seq=data["seq"], kind=KIND_EVENT, event=data["event"])
        return cls(
            seq=data["seq"], kind=KIND_ADVANCE, granule=data["granule"]
        )


class ShardWAL:
    """Append-only sequence-numbered log of one shard's inputs.

    ``path=None`` keeps the log purely in memory (in-process harness);
    with a path, every append is flushed to a JSONL file before the
    entry is considered logged, and an existing file is loaded on open —
    so a restarted *supervisor* recovers parked and unreplayed events,
    not just a restarted worker.  Durability is scoped to process
    crashes: appends are flushed to the OS but not fsynced, so an OS
    crash or power loss may lose the newest entries.

    ``codec`` selects the storage encoding (a name or
    :class:`~repro.serve.protocol.Codec`; ``None`` keeps the legacy
    JSONL text layout byte-for-byte).  With a codec, every append is
    round-tripped — encoded *and decoded back* before it lands in the
    replay list — so failover replay exercises the negotiated wire
    encoding rather than the in-memory objects, and a file is loaded
    through the stream splitter, which also means a binary WAL whose
    history began as JSONL (or vice versa, after a codec upgrade) still
    loads: each unit declares its own framing.
    """

    def __init__(
        self, path: str | None = None, *, codec: str | Codec | None = None
    ) -> None:
        self.path = path
        self.codec = resolve_codec(codec) if codec is not None else None
        self._entries: list[WalEntry] = []
        self._next_seq = 1
        self._handle = None
        #: Torn tails healed on load — a final entry truncated mid-write
        #: by a crash was cut off and the log continued (the entry was
        #: never considered logged, so nothing durable is lost).
        self.torn_tails = 0
        if path is not None:
            if os.path.exists(path):
                self._load(path)
            mode = "a" if self.codec is None else "ab"
            kwargs = {"encoding": "utf-8"} if self.codec is None else {}
            self._handle = open(path, mode, **kwargs)

    def _load(self, path: str) -> None:
        torn: str | None = None
        if self.codec is None:
            with open(path, "r", encoding="utf-8") as handle:
                lines = [
                    line.strip() for line in handle.read().splitlines()
                ]
            lines = [line for line in lines if line]
            for position, line in enumerate(lines):
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as error:
                    if position == len(lines) - 1:
                        # A crash mid-append leaves a partial final
                        # line; everything before it is intact.
                        torn = str(error)
                        break
                    raise ReproError(
                        f"corrupt WAL file {path!r}: {error}"
                    ) from None
                self._entries.append(WalEntry.from_dict(data))
        else:
            splitter = StreamDecoder()
            units = []
            with open(path, "rb") as handle:
                while chunk := handle.read(1 << 16):
                    units.extend(splitter.feed(chunk))
            units.extend(splitter.finish())
            for position, unit in enumerate(units):
                final = position == len(units) - 1
                if unit.kind == "error":
                    # Only the stream's very tail may legitimately be
                    # incomplete (a crash mid-append); an error earlier
                    # in the file is real corruption.
                    if final:
                        torn = unit.message
                        break
                    raise ReproError(
                        f"corrupt WAL file {path!r}: {unit.message}"
                    )
                by_framing = (
                    get_codec("binary")
                    if unit.kind == "frame"
                    else get_codec("jsonl")
                )
                try:
                    self._entries.append(
                        WalEntry.decode(by_framing, unit.payload)
                    )
                except CodecError as error:
                    if final:
                        torn = str(error)
                        break
                    raise ReproError(
                        f"corrupt WAL file {path!r}: {error}"
                    ) from None
        if torn is not None:
            self.torn_tails += 1
            self._rewrite(path)
        if self._entries:
            self._next_seq = self._entries[-1].seq + 1

    def _rewrite(self, path: str) -> None:
        """Atomically replace the file with the intact entries only."""
        tmp = f"{path}.tmp"
        if self.codec is None:
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in self._entries:
                    handle.write(json.dumps(entry.to_dict(), sort_keys=True))
                    handle.write("\n")
        else:
            with open(tmp, "wb") as handle:
                for entry in self._entries:
                    handle.write(entry.encode(self.codec))
        os.replace(tmp, path)

    # --- append side -----------------------------------------------------

    def append_event(self, event: ServeEvent) -> WalEntry:
        """Log one routed event; returns the entry (with its seq)."""
        return self._append(WalEntry(self._next_seq, KIND_EVENT, event=event))

    def append_advance(self, granule: int) -> WalEntry:
        """Log one drain-time clock advance to ``granule``."""
        return self._append(
            WalEntry(self._next_seq, KIND_ADVANCE, granule=granule)
        )

    def seed_seq(self, after_seq: int) -> None:
        """Never assign sequence numbers at or below ``after_seq``.

        The supervisor seeds a reopened WAL from its checkpoint store's
        watermark: if the log file was lost (or truncated by an older
        version that could empty it), a fresh entry numbered below the
        checkpoint seq would be excluded from recovery's tail replay
        and silently dropped.  Seeding is monotonic — a lower seed
        never rewinds the counter.
        """
        self._next_seq = max(self._next_seq, after_seq + 1)

    def _append(self, entry: WalEntry) -> WalEntry:
        if self.codec is not None:
            # Store what the codec would put on the wire: the entry is
            # re-materialized from its own encoding, so replay consumes
            # the negotiated format, not the object that produced it.
            blob = entry.encode(self.codec)
            entry = WalEntry.decode(self.codec, blob)
        else:
            blob = None
        self._entries.append(entry)
        self._next_seq = entry.seq + 1
        if self._handle is not None:
            if blob is None:
                self._handle.write(json.dumps(entry.to_dict(), sort_keys=True))
                self._handle.write("\n")
            else:
                self._handle.write(blob)
            self._handle.flush()
        return entry

    # --- replay side -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The newest logged sequence number (0 when empty)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WalEntry]:
        return iter(self._entries)

    def events(self) -> Iterator[ServeEvent]:
        """The logged events in append order (clock advances skipped).

        The envelope store's lanes hold nothing but events, so this is
        the whole chronology a point-in-time replay consumes.
        """
        for entry in self._entries:
            if entry.kind == KIND_EVENT:
                yield entry.event

    def tail(self, after_seq: int) -> list[WalEntry]:
        """Entries with ``seq > after_seq`` — the failover replay set."""
        return [entry for entry in self._entries if entry.seq > after_seq]

    def truncate(self, upto_seq: int) -> int:
        """Drop entries with ``seq <= upto_seq``; returns how many.

        Callers truncate only up to the *previous* checkpoint
        generation's seq, keeping one generation of replayable slack
        under checkpoint corruption.  The newest entry is retained even
        when covered: it carries the sequence watermark across a
        close/reopen, so numbering never restarts below a checkpoint.
        """
        keep = [entry for entry in self._entries if entry.seq > upto_seq]
        if not keep and self._entries:
            keep = [self._entries[-1]]
        dropped = len(self._entries) - len(keep)
        if dropped and self._handle is not None:
            self._handle.close()
            tmp = f"{self.path}.tmp"
            if self.codec is None:
                with open(tmp, "w", encoding="utf-8") as handle:
                    for entry in keep:
                        handle.write(
                            json.dumps(entry.to_dict(), sort_keys=True)
                        )
                        handle.write("\n")
                os.replace(tmp, self.path)
                self._handle = open(self.path, "a", encoding="utf-8")
            else:
                with open(tmp, "wb") as handle:
                    for entry in keep:
                        handle.write(entry.encode(self.codec))
                os.replace(tmp, self.path)
                self._handle = open(self.path, "ab")
        self._entries = keep
        return dropped

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ShardWAL":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
