"""Resumable transport sessions: exactly-once frames across reconnects.

A TCP connection between the supervisor and a shard worker used to *be*
the worker incarnation: a dropped link meant a full respawn (register,
checkpoint restore, WAL replay) even though the replica on the other
side was perfectly healthy.  Definition 4.4 makes reconnect-and-resume
safe — between granules no in-flight partial state spans a cross-site
comparison — so this module supplies the machinery to survive the
network instead of the process:

* :class:`RetryPolicy` — the reconnect schedule: exponential backoff
  with deterministic jitter, a per-attempt timeout, and an overall
  deadline after which the link is declared dead and the existing
  respawn path takes over as graceful degradation.

* :class:`SessionHalf` — the sans-IO per-direction frame ledger both
  endpoints run.  Every session frame (anything but ``beat`` / ``hello``
  / ``hello_ack`` / ``rewind``) is numbered ``n=1,2,...`` and buffered
  until the peer acknowledges receipt through the ``recv`` field
  piggybacked on every frame it sends back.  The receiver delivers only
  in order, drops duplicates (``n <= recv_n``), and answers a gap
  (``n > recv_n + 1``) with a ``rewind`` control frame naming the last
  number it holds; the sender then re-sends its buffered tail.  Across
  a reconnect the ``hello`` / ``hello_ack`` exchange carries each
  side's ``recv`` watermark and both replay their buffers past it —
  which makes the channel exactly-once and in-order end to end, for
  both event dispatch *and* the detections flowing back.

The halves are symmetric and transport-free: the supervisor's
:class:`~repro.serve.transport.ResumableTcpLink` and the worker
listener in :mod:`repro.serve.cluster` each own one, and the
deterministic network-fault harness (:mod:`repro.serve.netfault`)
drives a pair of them directly, with no sockets at all.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

#: Ops that travel outside the numbered session stream.  Beats are
#: ephemeral liveness (losing one is the signal, not a defect), the
#: hello exchange *establishes* numbering, and ``rewind`` is the
#: retransmission request itself.
UNNUMBERED_OPS = frozenset({"beat", "hello", "hello_ack", "rewind"})

#: How long a worker holds a disconnected session's replica before
#: discarding it (a resume after this window answers ``resumed: false``
#: and the supervisor falls back to a full respawn).
DEFAULT_SESSION_GRACE = 30.0


def new_session_id() -> str:
    """A fresh link-session identifier (random, not security-sensitive)."""
    return os.urandom(8).hex()


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Reconnect schedule for a dropped worker link.

    ``delay(attempt, rng)`` grows as ``base * 2**attempt`` capped at
    ``cap`` and scaled by jitter in ``[0.5, 1.0)`` — the same shape as
    :class:`~repro.serve.heartbeat.Backoff`, but carried as data so the
    policy can live on :class:`~repro.serve.config.ServeConfig` and the
    CLI.  ``attempt_timeout`` bounds each connect + resume handshake;
    ``deadline`` bounds the whole reconnect episode, after which the
    link reports itself dead and the supervisor's respawn/park path
    takes over.
    """

    base: float = 0.05
    cap: float = 2.0
    attempt_timeout: float = 5.0
    deadline: float = 15.0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap < self.base:
            raise ReproError(
                f"retry policy needs 0 < base <= cap, got "
                f"base={self.base} cap={self.cap}"
            )
        if self.attempt_timeout <= 0:
            raise ReproError(
                f"per-attempt timeout must be positive, got "
                f"{self.attempt_timeout}"
            )
        if self.deadline <= 0:
            raise ReproError(
                f"overall deadline must be positive, got {self.deadline}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The backoff sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * (2 ** max(0, attempt)))
        return raw * (0.5 + rng.random() / 2)

    def to_dict(self) -> dict[str, float]:
        return {
            "base": self.base,
            "cap": self.cap,
            "attempt_timeout": self.attempt_timeout,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RetryPolicy":
        try:
            return cls(**{key: float(value) for key, value in data.items()})
        except TypeError as error:
            raise ReproError(f"malformed retry policy {data!r}: {error}") from None


class SessionHalf:
    """One endpoint's sans-IO frame ledger for a resumable session.

    Symmetric: the supervisor and the worker each run one.  Outbound
    session frames are stamped (:meth:`stamp`) and buffered until the
    peer's ``recv`` acknowledges them; inbound frames pass through
    :meth:`receive`, which prunes the buffer, deduplicates, and flags
    gaps.  No clocks, no sockets — retransmission timing belongs to the
    owner.
    """

    def __init__(self) -> None:
        self.sent_n = 0
        self.recv_n = 0
        self.peer_recv = 0
        self._buffer: list[dict[str, Any]] = []

    @property
    def outstanding(self) -> int:
        """Buffered outbound frames the peer has not yet acknowledged."""
        return len(self._buffer)

    def stamp(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Number + buffer an outbound frame; returns the wire copy.

        Unnumbered ops only pick up the ``recv`` watermark (so even an
        idle peer's beats keep pruning our buffer on the other side).
        """
        wire = dict(frame)
        wire["recv"] = self.recv_n
        if frame.get("op") in UNNUMBERED_OPS:
            return wire
        self.sent_n += 1
        wire["n"] = self.sent_n
        self._buffer.append(wire)
        return wire

    def ack(self, recv: int) -> None:
        """Drop buffered frames the peer confirms having delivered."""
        if recv <= self.peer_recv:
            return
        self.peer_recv = recv
        self._buffer = [f for f in self._buffer if f["n"] > recv]

    def receive(self, frame: dict[str, Any]) -> str:
        """Classify one inbound frame: ``deliver``, ``duplicate``, ``gap``.

        Applies the piggybacked ``recv`` acknowledgement first, so even
        a duplicate or a gapped frame prunes the outbound buffer.  On
        ``gap`` the caller should send ``rewind_frame()`` so the peer
        retransmits.
        """
        recv = frame.get("recv")
        if recv is not None:
            self.ack(int(recv))
        n = frame.get("n")
        if n is None:
            return "deliver"
        n = int(n)
        if n <= self.recv_n:
            return "duplicate"
        if n == self.recv_n + 1:
            self.recv_n = n
            return "deliver"
        return "gap"

    def rewind_frame(self) -> dict[str, Any]:
        """The retransmission request for the current inbound watermark."""
        return {"op": "rewind", "have": self.recv_n, "recv": self.recv_n}

    def replay_after(self, recv: int) -> list[dict[str, Any]]:
        """The buffered tail past the peer's watermark, ready to resend.

        Used both by ``rewind`` handling and by the resume handshake.
        Each frame's ``recv`` is refreshed to the current inbound
        watermark before it goes back on the wire.
        """
        self.ack(recv)
        out = []
        for frame in self._buffer:
            frame = dict(frame)
            frame["recv"] = self.recv_n
            out.append(frame)
        return out
