"""JSONL transports for the serving runtime (stdin and TCP).

Both transports speak the one-object-per-line protocol of
:mod:`repro.serve.protocol`: clients write stamped primitive events,
the server writes detections as they fire.  Detections stream — each
rule is registered with a callback that serializes inside the owning
shard's worker — so a long-lived client sees composites the moment
their terminator event lands, not at shutdown.

The stdin transport reads to EOF, drains (advancing the engine clocks
to one granule past the last event so trailing temporal operators
fire), and exits — the shape the CI ``serve-smoke`` job and shell
pipelines use::

    python -m repro.cli simulate --emit-serve ... | repro serve --stdin ...

The TCP transport accepts any number of concurrent connections; every
connection receives every detection (rules are shared server state, not
per-connection).  Both transports are hardened against hostile input:
a malformed line produces one JSON ``error`` object on the offending
transport, an oversized line (``max_line_bytes``, default 1 MiB) is
discarded up to its terminating newline and reported the same way, and
in both cases the connection survives and the next well-formed line is
processed normally.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Callable, IO, Iterable

from repro.errors import ReproError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    detection_to_line,
    parse_event_line,
)
from repro.serve.runtime import ServingRuntime


class DetectionBroadcast:
    """Fans detection lines out to every attached line consumer."""

    def __init__(self) -> None:
        self._sinks: list[Callable[[str], None]] = []
        self.emitted = 0

    def attach(self, sink: Callable[[str], None]) -> Callable[[], None]:
        """Add a line consumer; returns its detach function."""
        self._sinks.append(sink)

        def detach() -> None:
            if sink in self._sinks:
                self._sinks.remove(sink)

        return detach

    def emit(self, line: str) -> None:
        self.emitted += 1
        for sink in list(self._sinks):
            sink(line)


def wire_rules(
    runtime: ServingRuntime,
    rules: Iterable[tuple[str, str]],
    broadcast: DetectionBroadcast,
) -> None:
    """Register ``(name, expression)`` rules that stream detections.

    The callback closes over the rule's shard index so emitted lines
    carry detection provenance without a lookup on the hot path.
    """
    for name, expression in rules:
        index = runtime.router.assign(name)

        def callback(detection: object, _shard: int = index) -> None:
            broadcast.emit(detection_to_line(_shard, detection))  # type: ignore[arg-type]

        runtime.register(expression, name=name, callback=callback)


def _error_line(message: str) -> str:
    return json.dumps({"error": message}, sort_keys=True)


class _LineReader:
    """Bounded line reader over an :class:`asyncio.StreamReader`.

    ``StreamReader.readline`` raises (and wedges the connection) when a
    line exceeds the stream limit; this reader instead *discards* an
    oversized line through its terminating newline and reports it, so
    one hostile client line cannot tear down the transport.
    """

    def __init__(
        self, reader: asyncio.StreamReader, max_line_bytes: int
    ) -> None:
        self.reader = reader
        self.max_line_bytes = max_line_bytes
        self._buffer = b""

    async def readline(self) -> tuple[bytes | None, bool]:
        """One ``(line, oversized)`` pair; ``(None, False)`` at EOF.

        ``(None, True)`` means an oversized line was discarded — the
        stream is intact and positioned at the next line.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line, self._buffer = (
                    self._buffer[:newline],
                    self._buffer[newline + 1 :],
                )
                if len(line) > self.max_line_bytes:
                    return None, True
                return line, False
            if len(self._buffer) > self.max_line_bytes:
                while True:  # discard through the monster line's newline
                    newline = self._buffer.find(b"\n")
                    if newline >= 0:
                        self._buffer = self._buffer[newline + 1 :]
                        return None, True
                    self._buffer = b""
                    chunk = await self.reader.read(1 << 16)
                    if not chunk:
                        return None, False
                    self._buffer = chunk
            chunk = await self.reader.read(1 << 16)
            if not chunk:
                if self._buffer:  # final unterminated line
                    line, self._buffer = self._buffer, b""
                    if len(line) > self.max_line_bytes:
                        return None, True
                    return line, False
                return None, False
            self._buffer += chunk


async def serve_stdin(
    runtime: ServingRuntime,
    broadcast: DetectionBroadcast,
    *,
    in_stream: IO[str] | None = None,
    out_stream: IO[str] | None = None,
    horizon_pad: int = 1,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> int:
    """Pump JSONL events from a text stream until EOF; returns event count.

    Blocking reads happen on a thread so the shard workers keep running
    between lines.  After EOF the runtime drains to ``last granule +
    horizon_pad`` and stops, flushing trailing temporal operators.
    Malformed or oversized lines get a structured error object and the
    loop continues with the next line.
    """
    source = in_stream if in_stream is not None else sys.stdin
    target = out_stream if out_stream is not None else sys.stdout

    def write_line(line: str) -> None:
        target.write(line + "\n")
        target.flush()

    detach = broadcast.attach(write_line)
    count = 0
    last_granule: int | None = None
    try:
        async with runtime:
            while True:
                line = await asyncio.to_thread(source.readline)
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                if len(line.encode("utf-8")) > max_line_bytes:
                    write_line(_error_line(
                        f"event line exceeds {max_line_bytes} bytes"
                    ))
                    continue
                try:
                    event = parse_event_line(line)
                except ReproError as error:
                    write_line(_error_line(str(error)))
                    continue
                await runtime.ingest(event)
                count += 1
                granule = event.granule
                last_granule = (
                    granule
                    if last_granule is None
                    else max(last_granule, granule)
                )
            horizon = None if last_granule is None else last_granule + horizon_pad
            await runtime.drain(horizon)
    finally:
        detach()
    return count


async def serve_tcp(
    runtime: ServingRuntime,
    broadcast: DetectionBroadcast,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future[int] | None" = None,
    max_line_bytes: int = MAX_LINE_BYTES,
) -> None:
    """Run a TCP JSONL server until cancelled.

    ``ready`` (if given) resolves to the bound port once listening —
    lets tests and supervisors connect without racing the bind.
    A malformed or oversized line gets a structured error object on the
    offending connection, which stays open for subsequent lines.
    """

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        def write_line(line: str) -> None:
            if not writer.is_closing():
                writer.write(line.encode("utf-8") + b"\n")

        lines = _LineReader(reader, max_line_bytes)
        detach = broadcast.attach(write_line)
        try:
            while True:
                raw, oversized = await lines.readline()
                if oversized:
                    write_line(_error_line(
                        f"event line exceeds {max_line_bytes} bytes"
                    ))
                    await writer.drain()
                    continue
                if raw is None:
                    break
                text = raw.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    event = parse_event_line(text)
                except ReproError as error:
                    write_line(_error_line(str(error)))
                    continue
                await runtime.ingest(event)
                await writer.drain()
            # A disconnecting client flushes what it sent; time advances
            # only as far as the stream itself reached (no horizon pad:
            # other clients may still be behind).
            await runtime.drain()
        finally:
            detach()
            writer.close()
    runtime.start()
    server = await asyncio.start_server(handle, host=host, port=port)
    bound = server.sockets[0].getsockname()[1] if server.sockets else port
    if ready is not None and not ready.done():
        ready.set_result(bound)
    try:
        async with server:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await runtime.stop()
