"""Transports for the serving runtime (stdin and TCP), codec-negotiated.

Clients write stamped primitive events; the server writes detections as
they fire.  Detections stream — each rule is registered with a callback
that serializes inside the owning shard's worker — so a long-lived
client sees composites the moment their terminator event lands, not at
shutdown.

Both transports speak version 0 (JSONL) by default and *negotiate up*:
a client may open with a hello line offering its codecs
(:func:`~repro.serve.protocol.hello_line`); the server answers with the
codec it chose and the connection switches.  With the version-1 binary
codec, events arrive as whole granule-batch frames
(:meth:`~repro.serve.protocol.BinaryCodec.decode_batch`) and ingest
takes the batched path (:meth:`~repro.serve.runtime.ServingRuntime.
ingest_batch`) — one routing+stamping pass per granule instead of per
event.  A client that never says hello is a version-0 client and keeps
working against any server mode; a ``jsonl``-pinned server answers
every hello with version 0, so a binary-capable client falls back
cleanly.

The stdin transport reads to EOF, drains (advancing the engine clocks
to one granule past the last event so trailing temporal operators
fire), and exits — the shape the CI ``serve-smoke`` job and shell
pipelines use::

    python -m repro.cli simulate --emit-serve ... | repro serve --stdin ...

Its output side stays line-oriented JSONL regardless of the ingest
framing, because ``repro serve`` stdout feeds shell pipelines.  The TCP
transport accepts any number of concurrent connections; every
connection receives every detection (rules are shared server state, not
per-connection), encoded per that connection's negotiated codec —
binary connections get detection frames, JSONL connections get rows.

Both transports are hardened against hostile input, with oversized
accounting per codec: a JSONL line is bounded by ``max_line_bytes``
(default 1 MiB) and discarded through its terminating newline; a binary
frame is bounded by the codec's :meth:`~repro.serve.protocol.Codec.
frame_limit` (64x — one frame legitimately carries a whole granule) and
skipped by its *declared length*, so neither a monster line nor a
monster frame desyncs the stream.  Malformed and corrupt input costs
one structured error object each (always a JSONL line — errors are
control plane) and the connection survives.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Callable, IO, Iterable, Mapping

from repro.errors import CodecError, ReproError
from repro.serve.protocol import (
    Codec,
    ServeEvent,
    StreamDecoder,
    StreamUnit,
    choose_codec,
    detection_to_json,
    get_codec,
    hello_ack_line,
    parse_hello,
)
from repro.serve.runtime import ServingRuntime


class DetectionBroadcast:
    """Fans detection rows out to every attached consumer.

    Sinks receive the JSON-ready row dict (see
    :func:`~repro.serve.protocol.detection_to_json`) and encode it for
    their own transport — a JSONL connection writes a line, a binary
    connection writes a detection frame.  ``emitted`` counts rows.
    """

    def __init__(self) -> None:
        self._sinks: list[Callable[[dict[str, Any]], None]] = []
        self.emitted = 0
        #: Sinks evicted because delivery raised (e.g. a TCP client
        #: that reset abruptly) — their undeliverable row is counted
        #: once; detection fan-out to the surviving sinks continues.
        self.evicted = 0

    def attach(
        self, sink: Callable[[dict[str, Any]], None]
    ) -> Callable[[], None]:
        """Add a row consumer; returns its detach function."""
        self._sinks.append(sink)

        def detach() -> None:
            if sink in self._sinks:
                self._sinks.remove(sink)

        return detach

    def emit(self, row: dict[str, Any]) -> None:
        self.emitted += 1
        for sink in list(self._sinks):
            try:
                sink(row)
            except (OSError, ConnectionError):
                # A dead transport must not poison the emitting shard's
                # callback path (one reset client would otherwise stop
                # detection delivery for every other consumer).
                if sink in self._sinks:
                    self._sinks.remove(sink)
                self.evicted += 1


def wire_rules(
    runtime: ServingRuntime,
    rules: Iterable[tuple[str, str]],
    broadcast: DetectionBroadcast,
) -> None:
    """Register ``(name, expression)`` rules that stream detections.

    The callback closes over the rule's shard index so emitted rows
    carry detection provenance without a lookup on the hot path.

    On an approximate runtime the per-rule callbacks (which would fire
    only on the exact engine, i.e. at confirmation) are replaced by a
    per-shard verdict sink: every TENTATIVE / CONFIRMED / RETRACTED
    emission becomes one row tagged with its verdict (see
    :func:`~repro.serve.protocol.detection_to_json`).
    """
    if runtime.config.approximate:
        for name, expression in rules:
            runtime.register(expression, name=name)
        for shard in runtime.shards:
            shard.verdict_sink = lambda index, v: broadcast.emit(
                detection_to_json(
                    index,
                    v.detection,
                    verdict=v.verdict.value,
                    seq=v.seq,
                    ref=v.ref,
                )
            )
        return
    for name, expression in rules:
        index = runtime.router.assign(name)

        def callback(detection: object, _shard: int = index) -> None:
            broadcast.emit(detection_to_json(_shard, detection))  # type: ignore[arg-type]

        runtime.register(expression, name=name, callback=callback)


def _error_line(message: str) -> str:
    return json.dumps({"error": message}, sort_keys=True)


def _row_line(row: Mapping[str, Any]) -> str:
    return json.dumps(row, sort_keys=True)


class _Connection:
    """Shared per-stream protocol state: splitter + negotiated codec.

    One instance per transport stream.  ``codec`` starts as ``None``
    (pure version-0 client); a hello upgrades it for the rest of the
    stream.  ``consume`` turns one :class:`StreamUnit` into either a
    hello ack, an error, or a batch of events for the caller to ingest.
    """

    def __init__(self, mode: str, max_line_bytes: int) -> None:
        self.mode = mode
        self.max_line_bytes = max_line_bytes
        self.codec: Codec | None = None
        self.splitter = StreamDecoder(
            max_line_bytes=max_line_bytes,
            max_frame_bytes=get_codec("binary").frame_limit(max_line_bytes),
        )

    def consume(
        self, unit: StreamUnit
    ) -> tuple[list[ServeEvent], str | None, str | None]:
        """``(events, reply_line, error_message)`` for one stream unit."""
        if unit.kind == "error":
            return [], None, unit.message
        if unit.kind == "frame":
            if self.mode == "jsonl":
                return [], None, (
                    "binary frame rejected: this server speaks jsonl only"
                )
            try:
                return get_codec("binary").decode_batch(unit.payload), None, None
            except CodecError as error:
                return [], None, str(error)
        try:
            data = json.loads(unit.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return [], None, f"invalid JSON event line: {error}"
        if isinstance(data, dict):
            offered = parse_hello(data)
            if offered is not None:
                self.codec = choose_codec(self.mode, offered)
                return [], hello_ack_line(self.codec), None
        if not isinstance(data, dict):
            return [], None, (
                f"event line must be a JSON object, got {type(data).__name__}"
            )
        try:
            return [ServeEvent.from_dict(data)], None, None
        except ReproError as error:
            return [], None, str(error)


async def serve_stdin(
    runtime: ServingRuntime,
    broadcast: DetectionBroadcast,
    *,
    in_stream: IO[str] | IO[bytes] | None = None,
    out_stream: IO[str] | None = None,
    horizon_pad: int = 1,
    max_line_bytes: int | None = None,
    codec: str | None = None,
) -> int:
    """Pump events from a stream until EOF; returns the event count.

    Input may be JSONL lines, binary event frames, or any interleaving
    (subject to ``codec`` — default: the runtime's configured mode; a
    ``"jsonl"`` server rejects frames with a structured error).  Output
    is always line-oriented JSONL (detection rows, hello acks, errors)
    so ``repro serve --stdin`` composes in shell pipelines.  Blocking
    reads happen on a thread so the shard workers keep running between
    chunks.  After EOF the runtime drains to ``last granule +
    horizon_pad`` and stops, flushing trailing temporal operators.
    Malformed, oversized, or corrupt input costs one structured error
    object and the loop continues.
    """
    config = runtime.config
    mode = codec if codec is not None else config.codec
    if max_line_bytes is None:
        max_line_bytes = config.max_line_bytes
    source = in_stream if in_stream is not None else sys.stdin
    target = out_stream if out_stream is not None else sys.stdout

    def write_line(line: str) -> None:
        target.write(line + "\n")
        target.flush()

    detach = broadcast.attach(lambda row: write_line(_row_line(row)))
    connection = _Connection(mode, max_line_bytes)
    count = 0
    last_granule: int | None = None

    async def handle_unit(unit: StreamUnit) -> None:
        nonlocal count, last_granule
        events, reply, error = connection.consume(unit)
        if reply is not None:
            write_line(reply)
        if error is not None:
            write_line(_error_line(error))
        if not events:
            return
        if len(events) == 1:
            await runtime.ingest(events[0])
        else:
            await runtime.ingest_batch(events)
        count += len(events)
        granule = max(event.granule for event in events)
        last_granule = (
            granule if last_granule is None else max(last_granule, granule)
        )

    # sys.stdin (and any text wrapper over a raw buffer) yields bytes
    # for frame-capable reading; a plain text stream (tests pass
    # io.StringIO) stays line-oriented and is re-framed per line.
    raw = getattr(source, "buffer", None)
    byte_source = raw if raw is not None else source
    reads_bytes = not hasattr(byte_source, "encoding")
    try:
        async with runtime:
            if reads_bytes:
                while chunk := await asyncio.to_thread(
                    byte_source.read, 1 << 16
                ):
                    for unit in connection.splitter.feed(chunk):
                        await handle_unit(unit)
            else:
                while line := await asyncio.to_thread(source.readline):
                    for unit in connection.splitter.feed(
                        line.encode("utf-8")
                    ):
                        await handle_unit(unit)
            for unit in connection.splitter.finish():
                await handle_unit(unit)
            horizon = (
                None if last_granule is None else last_granule + horizon_pad
            )
            await runtime.drain(horizon)
    finally:
        detach()
    return count


async def serve_tcp(
    runtime: ServingRuntime,
    broadcast: DetectionBroadcast,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: "asyncio.Future[int] | None" = None,
    max_line_bytes: int | None = None,
    codec: str | None = None,
) -> None:
    """Run a TCP server until cancelled, negotiating per connection.

    ``ready`` (if given) resolves to the bound port once listening —
    lets tests and supervisors connect without racing the bind.  Every
    connection starts as version-0 JSONL; a hello upgrades it (per the
    server ``codec`` mode — default: the runtime's configured mode) and
    detections flow back in the negotiated framing: rows on JSONL
    connections, detection frames on binary ones.  Errors are always
    JSONL lines.  A malformed line, corrupt frame, or oversized unit
    gets a structured error object on the offending connection, which
    stays open for subsequent input.
    """
    config = runtime.config
    mode = codec if codec is not None else config.codec
    if max_line_bytes is None:
        max_line_bytes = config.max_line_bytes

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(mode, max_line_bytes)

        def write_line(line: str) -> None:
            if not writer.is_closing():
                writer.write(line.encode("utf-8") + b"\n")

        def emit_row(row: dict[str, Any]) -> None:
            if writer.is_closing():
                return
            if connection.codec is not None and connection.codec.version > 0:
                writer.write(connection.codec.encode_detections([row]))
            else:
                writer.write(_row_line(row).encode("utf-8") + b"\n")

        detach = broadcast.attach(emit_row)
        try:
            eof = False
            while not eof:
                chunk = await reader.read(1 << 16)
                if chunk:
                    units = connection.splitter.feed(chunk)
                else:
                    units = connection.splitter.finish()
                    eof = True
                for unit in units:
                    events, reply, error = connection.consume(unit)
                    if reply is not None:
                        write_line(reply)
                    if error is not None:
                        write_line(_error_line(error))
                    if len(events) == 1:
                        await runtime.ingest(events[0])
                    elif events:
                        await runtime.ingest_batch(events)
                await writer.drain()
            # A disconnecting client flushes what it sent; time advances
            # only as far as the stream itself reached (no horizon pad:
            # other clients may still be behind).
            await runtime.drain()
            await writer.drain()
        except (ConnectionError, OSError):
            # Abrupt client reset mid-stream: everything already
            # ingested stays ingested and time still advances for it;
            # only this connection dies.
            await runtime.drain()
        finally:
            detach()
            writer.close()

    runtime.start()
    server = await asyncio.start_server(handle, host=host, port=port)
    bound = server.sockets[0].getsockname()[1] if server.sockets else port
    if ready is not None and not ready.done():
        ready.set_result(bound)
    try:
        async with server:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await runtime.stop()
